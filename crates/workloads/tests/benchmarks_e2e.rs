//! End-to-end runs of every benchmark on the full simulator under several
//! lock mappings, each verified against the benchmark's own correctness
//! checker — the strongest whole-system test in the workspace.

use glocks_locks::LockAlgorithm;
use glocks_sim::{LockMapping, Simulation, SimulationOptions};
use glocks_sim_base::CmpConfig;
use glocks_workloads::{BenchConfig, BenchKind};

fn run(kind: BenchKind, threads: usize, mapping_of: impl Fn(&BenchConfig) -> LockMapping) -> u64 {
    let bench = BenchConfig::smoke(kind, threads);
    let inst = bench.build();
    let cfg = CmpConfig::paper_baseline().with_cores(threads);
    let mapping = mapping_of(&bench);
    let opts = SimulationOptions { check_invariants_every: 20_000, ..Default::default() };
    let sim = Simulation::new(&cfg, &mapping, inst.workloads, &inst.init, opts);
    let (report, mem) = sim.run().expect("simulation wedged");
    if let Err(e) = (inst.verify)(mem.store()) {
        panic!("{kind:?} under {} failed verification: {e}", mapping.label());
    }
    report.cycles
}

fn hybrid(algo: LockAlgorithm) -> impl Fn(&BenchConfig) -> LockMapping {
    move |bench| LockMapping::hybrid(&bench.hc_locks(), algo, bench.n_locks())
}

#[test]
fn all_benchmarks_verify_under_mcs() {
    for kind in BenchKind::ALL {
        run(kind, 8, hybrid(LockAlgorithm::Mcs));
    }
}

#[test]
fn all_benchmarks_verify_under_glocks() {
    for kind in BenchKind::ALL {
        run(kind, 8, hybrid(LockAlgorithm::Glock));
    }
}

#[test]
fn all_benchmarks_verify_under_tatas() {
    for kind in BenchKind::ALL {
        run(kind, 8, |bench| {
            LockMapping::uniform(LockAlgorithm::Tatas, bench.n_locks())
        });
    }
}

#[test]
fn micro_benchmarks_verify_under_ticket_and_anderson() {
    for kind in BenchKind::MICROS {
        run(kind, 8, hybrid(LockAlgorithm::Ticket));
        run(kind, 8, hybrid(LockAlgorithm::Anderson));
    }
}

#[test]
fn glocks_beat_mcs_on_contended_micros() {
    for kind in [BenchKind::Sctr, BenchKind::Mctr, BenchKind::Dbll] {
        let mcs = run(kind, 8, hybrid(LockAlgorithm::Mcs));
        let gl = run(kind, 8, hybrid(LockAlgorithm::Glock));
        assert!(
            gl < mcs,
            "{kind:?}: GLock ({gl} cycles) should beat MCS ({mcs} cycles)"
        );
    }
}

#[test]
fn odd_thread_counts_work() {
    // Meshes degrade to 1×n for primes; everything must still verify.
    for kind in [BenchKind::Sctr, BenchKind::Actr, BenchKind::Qsort] {
        run(kind, 5, hybrid(LockAlgorithm::Mcs));
    }
}

#[test]
fn thirty_two_core_baseline_smoke() {
    // The paper's full 32-core CMP, reduced input.
    let cycles = run(BenchKind::Sctr, 32, hybrid(LockAlgorithm::Glock));
    assert!(cycles > 0);
}
