//! End-to-end mutual-exclusion property for the Reactive lock under
//! *bursty* contention — the workload shape designed to force protocol
//! switches (TATAS ↔ MCS) while critical sections are in flight.
//!
//! Every critical section is a read-modify-write increment of a counter
//! word guarded by the lock, so a single mutual-exclusion failure across a
//! protocol switch loses an increment and the final memory image is wrong.
//! The runtime protocol checker rides along at a dense cadence as a second
//! observer of the same property.

use glocks_cpu::{Action, Workload};
use glocks_locks::LockAlgorithm;
use glocks_mem::MemOp;
use glocks_sim::{CheckerConfig, LockMapping, Simulation, SimulationOptions};
use glocks_sim_base::{Addr, CmpConfig, LockId, SplitMix64};
use proptest::prelude::*;

/// Counter word guarded by workload lock `lock`.
fn counter_addr(lock: LockId) -> Addr {
    Addr(0x400_0000 + lock.0 as u64 * 64)
}

/// Program step: `Section` expands to acquire → load → store(+1) → release.
#[derive(Clone, Copy)]
enum Op {
    Compute(u64),
    Section(LockId),
    Barrier,
}

struct BurstyProgram {
    ops: Vec<Op>,
    i: usize,
    /// Micro-step inside the current `Section`.
    sub: u8,
}

impl Workload for BurstyProgram {
    fn next(&mut self, last: u64) -> Action {
        match self.ops.get(self.i) {
            None => Action::Done,
            Some(&Op::Compute(n)) => {
                self.i += 1;
                Action::Compute(n)
            }
            Some(&Op::Barrier) => {
                self.i += 1;
                Action::Barrier
            }
            Some(&Op::Section(lock)) => {
                let a = match self.sub {
                    0 => Action::Acquire(lock),
                    1 => Action::Mem(MemOp::Load(counter_addr(lock))),
                    // `last` is the loaded counter: a racy interleaving
                    // across a protocol switch would lose this increment.
                    2 => Action::Mem(MemOp::Store(counter_addr(lock), last + 1)),
                    _ => Action::Release(lock),
                };
                if self.sub == 3 {
                    self.sub = 0;
                    self.i += 1;
                } else {
                    self.sub += 1;
                }
                a
            }
        }
    }
}

/// Alternate all-threads bursts with a solo calm phase so the Reactive
/// EWMA crosses both water marks; returns per-thread programs plus the
/// expected final counter value.
fn generate(threads: usize, phases: u32, burst: u32, calm: u32, seed: u64) -> (Vec<Vec<Op>>, u64) {
    let lock = LockId(0);
    let mut rng = SplitMix64::new(seed);
    let mut progs: Vec<Vec<Op>> = (0..threads).map(|_| Vec::new()).collect();
    for _ in 0..phases {
        for (t, p) in progs.iter_mut().enumerate() {
            // Jittered lead-in so burst arrivals interleave differently
            // from case to case.
            p.push(Op::Compute(rng.next_below(20) + 1));
            for _ in 0..burst {
                p.push(Op::Section(lock));
            }
            p.push(Op::Barrier);
            // Calm phase: only thread 0 touches the lock.
            if t == 0 {
                for _ in 0..calm {
                    p.push(Op::Section(lock));
                }
            }
            p.push(Op::Barrier);
        }
    }
    let expected = phases as u64 * (threads as u64 * burst as u64 + calm as u64);
    (progs, expected)
}

fn run_reactive(threads: usize, progs: &[Vec<Op>]) -> u64 {
    let cfg = CmpConfig::paper_baseline().with_cores(threads);
    let mapping = LockMapping::uniform(LockAlgorithm::Reactive, 1);
    let workloads = progs
        .iter()
        .map(|ops| Box::new(BurstyProgram { ops: ops.clone(), i: 0, sub: 0 }) as Box<dyn Workload>)
        .collect();
    let options = SimulationOptions {
        // Dense second observer: mutual exclusion via the lock tracker.
        checker: Some(CheckerConfig { every: 64, fairness_window: 1_000_000 }),
        ..Default::default()
    };
    let sim = Simulation::new(&cfg, &mapping, workloads, &[], options);
    let (_report, mem) = sim.run().expect("bursty Reactive run wedged or tripped the checker");
    mem.store().load(counter_addr(LockId(0)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn reactive_preserves_every_increment_across_switches(
        seed in any::<u64>(),
        threads in 2usize..6,
        phases in 1u32..4,
        burst in 2u32..5,
        calm in 1u32..4,
    ) {
        let (progs, expected) = generate(threads, phases, burst, calm, seed);
        let counter = run_reactive(threads, &progs);
        prop_assert_eq!(counter, expected, "lost or duplicated increments");
    }
}
