//! Property tests over the assembled simulator: randomly generated
//! well-formed workloads (arbitrary interleavings of compute, memory,
//! locks and barriers) must run to completion with consistent accounting
//! under every lock implementation family.

use glocks_cpu::{Action, Workload};
use glocks_locks::LockAlgorithm;
use glocks_mem::MemOp;
use glocks_sim::{LockMapping, Simulation, SimulationOptions};
use glocks_sim_base::{Addr, CmpConfig, LockId, SplitMix64};
use proptest::prelude::*;

/// A randomly generated, well-formed thread program: lock sections are
/// properly nested (acquire → body → release), barriers are emitted the
/// same number of times on every thread.
struct RandomProgram {
    ops: Vec<Action>,
    i: usize,
}

impl Workload for RandomProgram {
    fn next(&mut self, _last: u64) -> Action {
        let a = self.ops.get(self.i).copied().unwrap_or(Action::Done);
        self.i += 1;
        a
    }
}

/// Generate per-thread programs with `sections` lock episodes and
/// `barriers` barrier episodes each, deterministically from `seed`.
fn generate(threads: usize, n_locks: usize, sections: u32, barriers: u32, seed: u64) -> Vec<Vec<Action>> {
    let mut rng = SplitMix64::new(seed);
    (0..threads)
        .map(|t| {
            let mut ops = Vec::new();
            let mut trng = rng.split();
            for s in 0..sections {
                let lock = LockId((trng.next_below(n_locks as u64)) as u16);
                ops.push(Action::Compute(trng.next_below(40) + 1));
                ops.push(Action::Acquire(lock));
                // critical section body: 1-3 memory ops on a shared word
                // owned by that lock (so races would corrupt it)
                let shared = Addr(0x300_0000 + lock.0 as u64 * 64);
                ops.push(Action::Mem(MemOp::Load(shared)));
                if trng.next_below(2) == 1 {
                    ops.push(Action::Compute(trng.next_below(10) + 1));
                }
                ops.push(Action::Mem(MemOp::Store(shared, (t as u64) << 32 | s as u64)));
                ops.push(Action::Release(lock));
                // scatter barriers evenly so all threads emit the same count
                if s < barriers {
                    ops.push(Action::Barrier);
                }
            }
            ops.push(Action::Done);
            ops
        })
        .collect()
}

fn run_once(
    threads: usize,
    n_locks: usize,
    algo: LockAlgorithm,
    programs: &[Vec<Action>],
) -> (u64, u64) {
    let cfg = CmpConfig::paper_baseline().with_cores(threads);
    let mapping = LockMapping::hybrid(
        &(0..n_locks.min(2)).map(|i| LockId(i as u16)).collect::<Vec<_>>(),
        algo,
        n_locks,
    );
    let workloads = programs
        .iter()
        .map(|ops| Box::new(RandomProgram { ops: ops.clone(), i: 0 }) as Box<dyn Workload>)
        .collect();
    let sim = Simulation::new(&cfg, &mapping, workloads, &[], SimulationOptions::default());
    let (report, _mem) = sim.run().expect("simulation wedged");
    (report.cycles, report.instructions())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn random_programs_complete_under_every_family(
        seed in any::<u64>(),
        threads in 2usize..7,
        n_locks in 1usize..4,
        sections in 1u32..5,
    ) {
        let barriers = sections.min(2);
        let programs = generate(threads, n_locks, sections, barriers, seed);
        for algo in [LockAlgorithm::Tatas, LockAlgorithm::Mcs, LockAlgorithm::Glock] {
            let (cycles, instrs) = run_once(threads, n_locks, algo, &programs);
            prop_assert!(cycles > 0);
            prop_assert!(instrs > 0);
        }
    }

    #[test]
    fn simulation_is_deterministic_for_random_programs(
        seed in any::<u64>(),
        threads in 2usize..6,
    ) {
        let programs = generate(threads, 2, 3, 1, seed);
        let a = run_once(threads, 2, LockAlgorithm::Glock, &programs);
        let b = run_once(threads, 2, LockAlgorithm::Glock, &programs);
        prop_assert_eq!(a, b);
    }
}
