//! Checkpoint/restore equivalence: a run interrupted at an arbitrary
//! cycle boundary and resumed into a freshly reconstructed machine must
//! finish with a **byte-identical** stats dump and an identical memory
//! image — fault-free, under a seeded fault plan with hard failures, and
//! with the runtime invariant checker riding along.

use glocks_cpu::{Action, Workload};
use glocks_locks::LockAlgorithm;
use glocks_mem::MemOp;
use glocks_sim::{CheckerConfig, LockMapping, Simulation, SimulationOptions, Snapshot};
use glocks_sim_base::fault::{FaultPlan, FaultRates};
use glocks_sim_base::snap::{SnapError, SnapReader, SnapWriter};
use glocks_sim_base::{Addr, CmpConfig, LockId};
use proptest::prelude::*;

const COUNTER: Addr = Addr(0x200_0000);

/// Lock-increment-release loop with full snapshot support.
struct Counter {
    iters: u64,
    phase: u8,
    seen: u64,
}

impl Workload for Counter {
    fn next(&mut self, last: u64) -> Action {
        match self.phase {
            0 => {
                if self.iters == 0 {
                    return Action::Done;
                }
                self.phase = 1;
                Action::Acquire(LockId(0))
            }
            1 => {
                self.phase = 2;
                Action::Mem(MemOp::Load(COUNTER))
            }
            2 => {
                self.seen = last;
                self.phase = 3;
                Action::Mem(MemOp::Store(COUNTER, self.seen + 1))
            }
            4 => {
                self.phase = 0;
                Action::Barrier
            }
            _ => {
                self.iters -= 1;
                self.phase = 4;
                Action::Release(LockId(0))
            }
        }
    }

    fn save_state(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        w.u8(self.phase);
        w.u64(self.iters);
        w.u64(self.seen);
        Ok(())
    }

    fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.phase = r.u8()?;
        self.iters = r.u64()?;
        self.seen = r.u64()?;
        Ok(())
    }
}

#[derive(Clone, Copy)]
struct Scenario {
    algo: LockAlgorithm,
    cores: usize,
    iters: u64,
    faults: bool,
    checker: bool,
}

fn options(s: Scenario) -> SimulationOptions {
    let fault_plan = s.faults.then(|| {
        let mut plan = FaultPlan::seeded(0xBEEF);
        plan.gline = FaultRates::drops(10_000); // 1% transient signal loss
        plan.kill_all_glock_networks(1, 2_000, 6_000); // plus a hard death
        plan
    });
    SimulationOptions {
        fault_plan,
        checker: s.checker.then(CheckerConfig::default),
        watchdog_cycles: 500_000,
        ..Default::default()
    }
}

fn build(s: Scenario) -> Simulation {
    let cfg = CmpConfig::paper_baseline().with_cores(s.cores);
    let mapping = LockMapping::uniform(s.algo, 1);
    let workloads = (0..s.cores)
        .map(|_| Box::new(Counter { iters: s.iters, phase: 0, seen: 0 }) as Box<dyn Workload>)
        .collect();
    Simulation::new(&cfg, &mapping, workloads, &[], options(s))
}

fn resume(s: Scenario, snap: &Snapshot) -> Simulation {
    let cfg = CmpConfig::paper_baseline().with_cores(s.cores);
    let mapping = LockMapping::uniform(s.algo, 1);
    let workloads = (0..s.cores)
        .map(|_| Box::new(Counter { iters: s.iters, phase: 0, seen: 0 }) as Box<dyn Workload>)
        .collect();
    Simulation::resume(&cfg, &mapping, workloads, &[], options(s), snap)
        .expect("snapshot must load into an identically specified machine")
}

/// Run to completion inside a stats session; return the dump JSON and the
/// final shared counter value.
fn finish_with_stats(sim: Simulation) -> (String, u64) {
    let (report, mem) = sim.run().expect("run must complete");
    let json = report.stats.as_ref().expect("stats were enabled").to_json();
    let counter = mem.store().load(COUNTER);
    glocks_stats::disable();
    (json, counter)
}

/// The uninterrupted reference run for a scenario.
fn baseline(s: Scenario) -> (String, u64) {
    glocks_stats::enable(glocks_stats::StatsConfig::default());
    finish_with_stats(build(s))
}

/// Checkpoint at (or just past) `at_cycle`, round-trip the snapshot
/// through its byte encoding, resume into a fresh machine, and finish.
fn interrupted(s: Scenario, at_cycle: u64) -> (String, u64) {
    glocks_stats::enable(glocks_stats::StatsConfig::default());
    let mut sim = build(s);
    while sim.now() < at_cycle {
        if sim.step().expect("run must stay healthy until the checkpoint") {
            break;
        }
    }
    let bytes = sim.checkpoint().expect("every component supports snapshots").into_bytes();
    drop(sim); // the interrupted process is gone
    glocks_stats::disable();

    let snap = Snapshot::from_bytes(bytes).expect("snapshot survives its byte round-trip");
    glocks_stats::enable(glocks_stats::StatsConfig::default());
    let resumed = resume(s, &snap);
    assert_eq!(resumed.now(), snap.cycle());
    finish_with_stats(resumed)
}

fn assert_equivalent(s: Scenario, at_cycle: u64) {
    let (ref_json, ref_counter) = baseline(s);
    let (got_json, got_counter) = interrupted(s, at_cycle);
    assert_eq!(got_counter, ref_counter, "memory image diverged");
    assert_eq!(got_json, ref_json, "stats dump not byte-identical after resume");
}

#[test]
fn mcs_resume_is_byte_identical() {
    let s = Scenario { algo: LockAlgorithm::Mcs, cores: 8, iters: 4, faults: false, checker: false };
    assert_equivalent(s, 1_500);
}

#[test]
fn glock_resume_is_byte_identical() {
    let s =
        Scenario { algo: LockAlgorithm::Glock, cores: 8, iters: 4, faults: false, checker: false };
    assert_equivalent(s, 1_000);
}

#[test]
fn dynamic_glock_resume_is_byte_identical() {
    let s = Scenario {
        algo: LockAlgorithm::DynamicGlock,
        cores: 8,
        iters: 4,
        faults: false,
        checker: false,
    };
    assert_equivalent(s, 1_000);
}

/// Under a hard-fault plan the checkpoint lands *inside* the failover
/// window (the network dies between cycles 2000 and 6000), so quarantine
/// state, epoch counters and software-fallback positions all ride through
/// the snapshot.
#[test]
fn resume_under_hard_faults_is_byte_identical() {
    let s =
        Scenario { algo: LockAlgorithm::Glock, cores: 8, iters: 12, faults: true, checker: false };
    assert_equivalent(s, 4_000);
}

#[test]
fn resume_with_invariant_checker_is_byte_identical() {
    let s =
        Scenario { algo: LockAlgorithm::Glock, cores: 8, iters: 8, faults: true, checker: true };
    assert_equivalent(s, 3_000);
}

#[test]
fn periodic_checkpoints_do_not_perturb_the_run() {
    let s = Scenario { algo: LockAlgorithm::Mcs, cores: 4, iters: 3, faults: false, checker: false };
    let (ref_json, ref_counter) = baseline(s);
    glocks_stats::enable(glocks_stats::StatsConfig::default());
    let mut n_snaps = 0usize;
    let mut last: Option<Snapshot> = None;
    let (report, mem) = build(s)
        .run_with_checkpoints(500, &mut |snap| {
            n_snaps += 1;
            last = Some(snap);
        })
        .expect("checkpointed run must complete");
    let json = report.stats.as_ref().unwrap().to_json();
    glocks_stats::disable();
    assert!(n_snaps > 0, "the run is long enough for at least one auto-checkpoint");
    assert_eq!(mem.store().load(COUNTER), ref_counter);
    assert_eq!(json, ref_json, "auto-checkpointing changed the run");
    // ...and the last auto-checkpoint itself resumes correctly.
    glocks_stats::enable(glocks_stats::StatsConfig::default());
    let (json2, counter2) = finish_with_stats(resume(s, &last.expect("saw a snapshot")));
    assert_eq!(counter2, ref_counter);
    assert_eq!(json2, ref_json);
}

/// The event-driven scheduler must march through exactly the dense loop's
/// state trajectory: same final dump bytes, same memory image — fault-free,
/// under transient + hard faults with failover, and with the checker
/// attached.
#[test]
fn dense_and_event_driven_runs_are_byte_identical() {
    let scenarios = [
        Scenario { algo: LockAlgorithm::Mcs, cores: 8, iters: 4, faults: false, checker: false },
        Scenario { algo: LockAlgorithm::Glock, cores: 8, iters: 12, faults: true, checker: false },
        Scenario { algo: LockAlgorithm::Glock, cores: 8, iters: 8, faults: true, checker: true },
    ];
    for s in scenarios {
        let (skip_json, skip_counter) = baseline(s);
        glocks_stats::enable(glocks_stats::StatsConfig::default());
        let cfg = CmpConfig::paper_baseline().with_cores(s.cores);
        let mapping = LockMapping::uniform(s.algo, 1);
        let workloads = (0..s.cores)
            .map(|_| Box::new(Counter { iters: s.iters, phase: 0, seen: 0 }) as Box<dyn Workload>)
            .collect();
        let opts = SimulationOptions { idle_skip: false, ..options(s) };
        let (dense_json, dense_counter) =
            finish_with_stats(Simulation::new(&cfg, &mapping, workloads, &[], opts));
        assert_eq!(dense_counter, skip_counter, "memory image diverged");
        assert_eq!(dense_json, skip_json, "dense vs event-driven dumps differ");
    }
}

/// `idle_skip` is a host execution strategy, not machine spec: a snapshot
/// taken by a dense run loads into an event-driven machine (and vice
/// versa) and finishes byte-identically — the two modes share fingerprints
/// because they share trajectories.
#[test]
fn dense_snapshot_resumes_into_event_driven_machine_and_back() {
    let s =
        Scenario { algo: LockAlgorithm::Glock, cores: 8, iters: 12, faults: true, checker: false };
    let (ref_json, ref_counter) = baseline(s);

    let make = |idle_skip: bool| {
        let cfg = CmpConfig::paper_baseline().with_cores(s.cores);
        let mapping = LockMapping::uniform(s.algo, 1);
        let workloads: Vec<Box<dyn Workload>> = (0..s.cores)
            .map(|_| Box::new(Counter { iters: s.iters, phase: 0, seen: 0 }) as Box<dyn Workload>)
            .collect();
        (cfg, mapping, workloads, SimulationOptions { idle_skip, ..options(s) })
    };

    // Dense prefix (inside the failover window) → event-driven rest.
    glocks_stats::enable(glocks_stats::StatsConfig::default());
    let (cfg, mapping, workloads, opts) = make(false);
    let mut sim = Simulation::new(&cfg, &mapping, workloads, &[], opts);
    while sim.now() < 4_000 {
        if sim.step().expect("healthy until checkpoint") {
            break;
        }
    }
    let snap = sim.checkpoint().expect("snapshot");
    drop(sim);
    glocks_stats::disable();
    glocks_stats::enable(glocks_stats::StatsConfig::default());
    let (cfg, mapping, workloads, opts) = make(true);
    let resumed = Simulation::resume(&cfg, &mapping, workloads, &[], opts, &snap)
        .expect("dense snapshot loads into an event-driven machine");
    let (json, counter) = finish_with_stats(resumed);
    assert_eq!(counter, ref_counter);
    assert_eq!(json, ref_json, "dense → event-driven handoff diverged");

    // Event-driven prefix → dense rest.
    glocks_stats::enable(glocks_stats::StatsConfig::default());
    let (cfg, mapping, workloads, opts) = make(true);
    let mut sim = Simulation::new(&cfg, &mapping, workloads, &[], opts);
    while sim.now() < 4_000 {
        if sim.step_fast(0).expect("healthy until checkpoint") {
            break;
        }
    }
    let snap = sim.checkpoint().expect("snapshot");
    drop(sim);
    glocks_stats::disable();
    glocks_stats::enable(glocks_stats::StatsConfig::default());
    let (cfg, mapping, workloads, opts) = make(false);
    let resumed = Simulation::resume(&cfg, &mapping, workloads, &[], opts, &snap)
        .expect("event-driven snapshot loads into a dense machine");
    let (json, counter) = finish_with_stats(resumed);
    assert_eq!(counter, ref_counter);
    assert_eq!(json, ref_json, "event-driven → dense handoff diverged");
}

#[test]
fn mismatched_configuration_is_refused() {
    let s = Scenario { algo: LockAlgorithm::Mcs, cores: 4, iters: 2, faults: false, checker: false };
    let mut sim = build(s);
    for _ in 0..100 {
        if sim.step().unwrap() {
            break;
        }
    }
    let snap = sim.checkpoint().unwrap();
    // Different core count → different fingerprint → refused.
    let other = Scenario { cores: 8, ..s };
    let cfg = CmpConfig::paper_baseline().with_cores(other.cores);
    let mapping = LockMapping::uniform(other.algo, 1);
    let workloads = (0..other.cores)
        .map(|_| Box::new(Counter { iters: other.iters, phase: 0, seen: 0 }) as Box<dyn Workload>)
        .collect();
    let err = Simulation::resume(&cfg, &mapping, workloads, &[], options(other), &snap)
        .err()
        .expect("a different machine must refuse the snapshot");
    assert!(matches!(err, SnapError::FingerprintMismatch { .. }), "{err}");
    // Different lock algorithm → also refused.
    let err2 = {
        let cfg = CmpConfig::paper_baseline().with_cores(s.cores);
        let mapping = LockMapping::uniform(LockAlgorithm::Ticket, 1);
        let workloads = (0..s.cores)
            .map(|_| Box::new(Counter { iters: s.iters, phase: 0, seen: 0 }) as Box<dyn Workload>)
            .collect();
        Simulation::resume(&cfg, &mapping, workloads, &[], options(s), &snap)
            .err()
            .expect("a different lock mapping must refuse the snapshot")
    };
    assert!(matches!(err2, SnapError::FingerprintMismatch { .. }), "{err2}");
}

/// Per-core workloads of an open-loop service machine: bursty MMPP
/// arrivals over one lock, so a checkpoint can land mid-burst with
/// requests queued, a request in flight, and the arrival RNG mid-stream.
/// Stats ids register in construction order — identical for the baseline
/// and the resumed process, which is what the registry restore checks.
fn service_workloads(cores: usize) -> Vec<Box<dyn Workload>> {
    use glocks_arrivals::{ArrivalProcess, ServiceConfig, ServiceWorkload};
    (0..cores)
        .map(|core| {
            let c = ServiceConfig {
                lock: LockId(0),
                data: COUNTER,
                cs_instructions: 8,
                requests: 10,
                queue_cap: 16,
                process: ArrivalProcess::Mmpp {
                    calm_gap: 900,
                    burst_gap: 60,
                    calm_dwell: 3_000,
                    burst_dwell: 2_000,
                },
                tenant: 0,
            };
            Box::new(ServiceWorkload::new(c, 0xA11E, core as u64)) as Box<dyn Workload>
        })
        .collect()
}

fn build_service(algo: LockAlgorithm, cores: usize) -> Simulation {
    build_service_with(algo, cores, true)
}

fn build_service_with(algo: LockAlgorithm, cores: usize, idle_skip: bool) -> Simulation {
    let cfg = CmpConfig::paper_baseline().with_cores(cores);
    let mapping = LockMapping::uniform(algo, 1);
    let options =
        SimulationOptions { watchdog_cycles: 500_000, idle_skip, ..Default::default() };
    Simulation::new(&cfg, &mapping, service_workloads(cores), &[(COUNTER, 0)], options)
}

/// The open-loop service machine is where the event-driven scheduler
/// actually skips (long inter-arrival lulls with every core asleep), so it
/// is the sharpest equivalence probe: dense and skipping runs must dump
/// byte-identical stats, including the SLO tail histograms.
#[test]
fn dense_and_event_driven_service_runs_are_byte_identical() {
    for algo in [LockAlgorithm::Mcs, LockAlgorithm::Glock] {
        glocks_stats::enable(glocks_stats::StatsConfig::default());
        let (skip_json, skip_counter) = run_service(build_service_with(algo, 6, true));
        glocks_stats::enable(glocks_stats::StatsConfig::default());
        let (dense_json, dense_counter) = run_service(build_service_with(algo, 6, false));
        assert_eq!(dense_counter, skip_counter, "{algo:?}: memory image diverged");
        assert_eq!(dense_json, skip_json, "{algo:?}: service dumps differ");
    }
}

fn run_service(sim: Simulation) -> (String, u64) {
    let (report, mem) = sim.run().expect("service run must complete");
    let json = report.stats.as_ref().expect("stats were enabled").to_json();
    let counter = mem.store().load(COUNTER);
    glocks_stats::disable();
    (json, counter)
}

/// Options for an *intermittent* network death: the G-lines die inside
/// [2000, 6000], the replacement hardware becomes claimable 40k cycles
/// later (just before the ~47k-cycle detection verdict lands), and the
/// fail-back machinery probes, dwells, drains and re-arms — all within the
/// run.
fn blink_options(checker: bool) -> SimulationOptions {
    let mut plan = FaultPlan::seeded(0xBEEF);
    plan.gline = FaultRates::drops(10_000);
    plan.blink_all_glock_networks(1, 2_000, 6_000, 40_000);
    SimulationOptions {
        fault_plan: Some(plan),
        checker: checker.then(CheckerConfig::default),
        watchdog_cycles: 500_000,
        ..Default::default()
    }
}

fn blink_workloads(cores: usize, iters: u64) -> Vec<Box<dyn Workload>> {
    (0..cores)
        .map(|_| Box::new(Counter { iters, phase: 0, seen: 0 }) as Box<dyn Workload>)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Tentpole property: an intermittent-fault run interrupted at a
    /// random cycle inside the repair / probe / drain window and resumed
    /// into a fresh machine produces a byte-identical dump — the repaired
    /// network's untrusted boot image, the fail-back controller's probe
    /// rotation, hysteresis score, dwell timer and software-drain
    /// bookkeeping all ride through the snapshot.
    #[test]
    fn resume_during_probe_and_drain_phases_is_byte_identical(
        at_cycle in 45_000u64..62_000,
        checker in any::<bool>(),
    ) {
        let cores = 8;
        let iters = 48;
        let cfg = CmpConfig::paper_baseline().with_cores(cores);
        let mapping = LockMapping::uniform(LockAlgorithm::Glock, 1);

        glocks_stats::enable(glocks_stats::StatsConfig::default());
        let sim = Simulation::new(
            &cfg, &mapping, blink_workloads(cores, iters), &[], blink_options(checker),
        );
        let (ref_json, ref_counter) = finish_with_stats(sim);
        // The reference run proves the checkpoint window actually overlaps
        // the fail-back machinery: the hardware path was re-armed, and the
        // run outlived every sampled interruption cycle.
        let dump = glocks_stats::StatsDump::from_json(&ref_json).expect("dump parses");
        prop_assert!(
            dump.counters.get("sim.failbacks").copied().unwrap_or(0) > 0,
            "the scenario must actually fail back"
        );
        prop_assert!(
            dump.counters.get("sim.cycles").copied().unwrap_or(0) > at_cycle,
            "the run must outlive the interruption cycle"
        );

        glocks_stats::enable(glocks_stats::StatsConfig::default());
        let mut sim = Simulation::new(
            &cfg, &mapping, blink_workloads(cores, iters), &[], blink_options(checker),
        );
        while sim.now() < at_cycle {
            if sim.step().expect("healthy until checkpoint") {
                break;
            }
        }
        let bytes = sim.checkpoint().expect("mid-fail-back state snapshots").into_bytes();
        drop(sim);
        glocks_stats::disable();

        let snap = Snapshot::from_bytes(bytes).expect("snapshot byte round-trip");
        glocks_stats::enable(glocks_stats::StatsConfig::default());
        let resumed = Simulation::resume(
            &cfg, &mapping, blink_workloads(cores, iters), &[], blink_options(checker), &snap,
        )
        .expect("snapshot loads into an identical machine");
        prop_assert_eq!(resumed.now(), snap.cycle());
        let (got_json, got_counter) = finish_with_stats(resumed);
        prop_assert_eq!(got_counter, ref_counter, "memory image diverged");
        prop_assert_eq!(got_json, ref_json, "mid-fail-back resume not byte-identical");
    }

    /// Satellite property: an open-loop service run interrupted mid-burst
    /// at a random cycle and resumed produces a byte-identical stats dump
    /// (arrival RNG position, backlog contents, in-flight request
    /// timestamps and live histograms all ride through the snapshot).
    #[test]
    fn service_resume_mid_burst_is_byte_identical(
        at_cycle in 200u64..8_000,
        family in 0u8..2,
    ) {
        let algo = if family == 0 { LockAlgorithm::Mcs } else { LockAlgorithm::Glock };
        glocks_stats::enable(glocks_stats::StatsConfig::default());
        let (ref_json, ref_counter) = run_service(build_service(algo, 6));

        glocks_stats::enable(glocks_stats::StatsConfig::default());
        let mut sim = build_service(algo, 6);
        while sim.now() < at_cycle {
            if sim.step().expect("healthy until checkpoint") {
                break;
            }
        }
        let bytes = sim.checkpoint().expect("service workloads snapshot").into_bytes();
        drop(sim);
        glocks_stats::disable();

        let snap = Snapshot::from_bytes(bytes).expect("snapshot byte round-trip");
        glocks_stats::enable(glocks_stats::StatsConfig::default());
        let cfg = CmpConfig::paper_baseline().with_cores(6);
        let mapping = LockMapping::uniform(algo, 1);
        let options = SimulationOptions { watchdog_cycles: 500_000, ..Default::default() };
        let resumed = Simulation::resume(
            &cfg,
            &mapping,
            service_workloads(6),
            &[(COUNTER, 0)],
            options,
            &snap,
        )
        .expect("snapshot loads into an identical service machine");
        prop_assert_eq!(resumed.now(), snap.cycle());
        let (got_json, got_counter) = run_service(resumed);
        prop_assert_eq!(got_counter, ref_counter);
        prop_assert_eq!(got_json, ref_json, "service resume not byte-identical");
    }

    /// Satellite property: checkpoint at a *random* cycle, resume, and the
    /// final stats dump is byte-identical — across algorithm families and
    /// with/without faults and the checker.
    #[test]
    fn random_cycle_checkpoint_resumes_byte_identically(
        at_cycle in 1u64..6_000,
        family in 0u8..3,
    ) {
        let (algo, faults, checker) = match family {
            0 => (LockAlgorithm::Mcs, false, false),
            1 => (LockAlgorithm::Glock, true, false),
            _ => (LockAlgorithm::Glock, true, true),
        };
        let s = Scenario { algo, cores: 6, iters: 6, faults, checker };
        let (ref_json, ref_counter) = baseline(s);
        let (got_json, got_counter) = interrupted(s, at_cycle);
        prop_assert_eq!(got_counter, ref_counter);
        prop_assert_eq!(got_json, ref_json);
    }
}
