//! Full-stack fault-injection tests: the assembled simulator under seeded
//! fault schedules.
//!
//! Two regimes matter. At survivable loss rates (≥1% of G-line signals
//! dropped) the hardened protocol must deliver a *correct* run — exact
//! final counter, one grant per workload acquire, round-robin fairness
//! modulo retries — with no panics. At fatal rates (all TOKEN delivery
//! suppressed, here via 100% signal loss) the runner must hand back a
//! structured [`SimError`] with a populated diagnostic snapshot instead of
//! aborting the process.

use glocks_cpu::{Action, CoreActivity, Workload};
use glocks_locks::LockAlgorithm;
use glocks_mem::MemOp;
use glocks_sim::{LockMapping, SimError, Simulation, SimulationOptions};
use glocks_sim_base::fault::{FaultPlan, FaultRates};
use glocks_sim_base::{Addr, CmpConfig, LockId};

const COUNTER: Addr = Addr(0x200_0000);

/// Lock-increment-release loop: `iters` critical sections per core, each
/// bumping one shared counter — any mutual-exclusion violation shows up as
/// a lost increment.
struct Counter {
    iters: u64,
    phase: u8,
    seen: u64,
}

impl Workload for Counter {
    fn next(&mut self, last: u64) -> Action {
        match self.phase {
            0 => {
                if self.iters == 0 {
                    return Action::Done;
                }
                self.phase = 1;
                Action::Acquire(LockId(0))
            }
            1 => {
                self.phase = 2;
                Action::Mem(MemOp::Load(COUNTER))
            }
            2 => {
                self.seen = last;
                self.phase = 3;
                Action::Mem(MemOp::Store(COUNTER, self.seen + 1))
            }
            _ => {
                self.iters -= 1;
                self.phase = 0;
                Action::Release(LockId(0))
            }
        }
    }
}

fn build(cores: usize, iters: u64, plan: FaultPlan, watchdog: u64) -> Simulation {
    let cfg = CmpConfig::paper_baseline().with_cores(cores);
    let mapping = LockMapping::uniform(LockAlgorithm::Glock, 1);
    let workloads = (0..cores)
        .map(|_| Box::new(Counter { iters, phase: 0, seen: 0 }) as Box<dyn Workload>)
        .collect();
    let opts = SimulationOptions {
        check_invariants_every: 1000,
        fault_plan: Some(plan),
        watchdog_cycles: watchdog,
        ..Default::default()
    };
    Simulation::new(&cfg, &mapping, workloads, &[], opts)
}

#[test]
fn one_percent_gline_loss_is_survived_correctly() {
    let cores = 9;
    let iters = 6;
    let mut plan = FaultPlan::seeded(0xC0FFEE);
    plan.gline = FaultRates::drops(10_000); // 1%
    let (report, mem) = build(cores, iters, plan, 500_000)
        .run()
        .expect("1% signal loss must be recovered by retransmission");
    // Exact counter: every critical section ran exactly once, atomically.
    let expected = cores as u64 * iters;
    assert_eq!(mem.store().load(COUNTER), expected);
    assert_eq!(report.acquires[0], expected);
    // Grants count accepted tokens only, so they stay exact under faults.
    assert_eq!(report.glocks[0].grants, expected);
    // The schedule actually injected faults and the protocol actually
    // recovered (a vacuous pass would defeat the test).
    assert!(report.glocks[0].dropped > 0, "seed produced no drops");
    assert!(report.glocks[0].retransmits > 0, "drops must force retransmissions");
}

#[test]
fn heavier_mixed_faults_keep_round_robin_fairness_modulo_retries() {
    let cores = 8;
    let iters = 8;
    let mut plan = FaultPlan::seeded(7);
    plan.gline = FaultRates {
        drop_ppm: 30_000,
        delay_ppm: 50_000,
        max_delay: 48,
        duplicate_ppm: 20_000,
    };
    let (report, mem) = build(cores, iters, plan, 500_000)
        .run()
        .expect("mixed fault schedule must be survivable");
    assert_eq!(mem.store().load(COUNTER), cores as u64 * iters);
    // Round-robin fairness modulo retries: the arbiter scan still hands
    // every core exactly its share, so per-lock mean waits stay bounded
    // and every core finished all its iterations (the counter proves it).
    assert_eq!(report.glocks[0].grants, cores as u64 * iters);
}

#[test]
fn total_signal_loss_reports_a_structured_wedge() {
    let mut plan = FaultPlan::seeded(1);
    plan.gline = FaultRates::drops(1_000_000); // every signal lost
    let err = match build(4, 2, plan, 50_000).run() {
        Ok(_) => panic!("no token can ever arrive, yet the run completed"),
        Err(e) => e,
    };
    let SimError::NoForwardProgress { window, ref snapshot } = err else {
        panic!("expected NoForwardProgress, got {}", err.kind());
    };
    assert_eq!(window, 50_000);
    // The snapshot must actually describe the wedge.
    assert_eq!(snapshot.cores.len(), 4);
    assert!(
        snapshot
            .cores
            .iter()
            .any(|c| matches!(c.activity, CoreActivity::Acquiring(LockId(0)))),
        "cores should be stuck acquiring: {:?}",
        snapshot.cores
    );
    assert_eq!(snapshot.locks.len(), 1);
    assert_eq!(snapshot.locks[0].holder, None, "no grant ever happened");
    assert_eq!(snapshot.glocks.len(), 1);
    assert_eq!(snapshot.glocks[0].stats.grants, 0);
    assert!(snapshot.glocks[0].stats.dropped > 0);
    // Display renders the whole picture without panicking.
    let rendered = err.to_string();
    assert!(rendered.contains("no forward progress"), "{rendered}");
    assert!(rendered.contains("Acquiring"), "{rendered}");
}

#[test]
fn noc_and_directory_delays_are_absorbed() {
    let mut plan = FaultPlan::seeded(99);
    plan.noc = FaultRates::delays(100_000, 24); // 10% of packets late
    plan.dir = FaultRates::delays(100_000, 32); // 10% of dir replies stalled
    let cores = 4;
    let iters = 4;
    let (report, mem) = build(cores, iters, plan, 500_000)
        .run()
        .expect("delays alone never kill liveness");
    assert_eq!(mem.store().load(COUNTER), cores as u64 * iters);
    assert_eq!(report.acquires[0], cores as u64 * iters);
}

#[test]
fn fault_runs_are_deterministic() {
    let run = || {
        let mut plan = FaultPlan::seeded(0xDE7);
        plan.gline = FaultRates {
            drop_ppm: 20_000,
            delay_ppm: 30_000,
            max_delay: 16,
            duplicate_ppm: 10_000,
        };
        let (report, _) = build(6, 5, plan, 500_000).run().expect("survivable");
        (report.cycles, report.glocks[0].signals, report.glocks[0].retransmits)
    };
    assert_eq!(run(), run(), "same seed must replay bit-identically");
}
