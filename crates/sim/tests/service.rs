//! End-to-end open-loop service runs through the full machine: arrivals
//! sleep on `Action::WaitUntil`, the sleep-aware watchdog tolerates lulls
//! between bursts, mutual exclusion holds (shared word = completed
//! requests), and the final dump carries the `slo.*` report.

use glocks_arrivals::{mix_workloads, slo, ArrivalProcess, TenantSpec};
use glocks_arrivals::tenant::mix_init;
use glocks_locks::LockAlgorithm;
use glocks_sim::{LockMapping, Simulation, SimulationOptions};
use glocks_sim_base::{Addr, CmpConfig, LockId};

fn run_mix(
    algo: LockAlgorithm,
    tenants: &[TenantSpec],
    n_cores: usize,
    watchdog: u64,
) -> (glocks_stats::StatsDump, Vec<u64>) {
    glocks_stats::enable(glocks_stats::StatsConfig::default());
    let cfg = CmpConfig::paper_baseline().with_cores(n_cores);
    let n_locks = tenants.iter().map(|t| usize::from(t.lock.0) + 1).max().unwrap();
    let mapping = LockMapping::uniform(algo, n_locks);
    let workloads = mix_workloads(0x51_0A0, tenants, n_cores);
    let init = mix_init(tenants);
    let options = SimulationOptions { watchdog_cycles: watchdog, ..Default::default() };
    let sim = Simulation::new(&cfg, &mapping, workloads, &init, options);
    let (report, mem) = sim.run().expect("service run must complete");
    let dump = report.stats.expect("stats were enabled");
    let words = tenants.iter().map(|t| mem.store().load(t.data)).collect();
    glocks_stats::disable();
    (dump, words)
}

fn tenant(lock: u16, data: Addr, process: ArrivalProcess) -> TenantSpec {
    TenantSpec {
        process,
        lock: LockId(lock),
        data,
        requests_per_core: 20,
        cs_instructions: 16,
        queue_cap: 64,
    }
}

/// A lazy single-tenant stream: mean gap far above the service time, so
/// cores spend most of the run asleep. A small watchdog window proves the
/// sleep-aware check treats deliberate idleness as progress.
#[test]
fn underloaded_service_completes_with_slo_report() {
    let t = tenant(0, Addr(0x0200_0000), ArrivalProcess::Poisson { mean_gap: 12_000 });
    let (dump, words) = run_mix(LockAlgorithm::Mcs, &[t], 4, 4_000);
    let completed = dump.counters["service.completed"];
    assert_eq!(completed, 4 * 20, "every request served when underloaded");
    assert_eq!(dump.counters["service.dropped"], 0);
    assert_eq!(words[0], completed, "mutual exclusion: word counts completions");
    for k in ["slo.p50", "slo.p99", "slo.p999", "slo.saturated", "slo.backlogged"] {
        assert!(dump.counters.contains_key(k), "missing {k}");
    }
    assert_eq!(dump.counters["slo.saturated"], 0, "lazy stream must not saturate");
    assert!(dump.counters["slo.p999"] >= dump.counters["slo.p50"]);
}

/// Two tenants (one calm Poisson, one bursty MMPP) on disjoint locks and
/// words, under GLock. Per-tenant accounting must stay separate.
#[test]
fn two_tenant_mix_keeps_tenants_isolated() {
    let tenants = [
        tenant(0, Addr(0x0200_0000), ArrivalProcess::Poisson { mean_gap: 2_000 }),
        tenant(
            1,
            Addr(0x1200_0000),
            ArrivalProcess::Mmpp {
                calm_gap: 4_000,
                burst_gap: 100,
                calm_dwell: 20_000,
                burst_dwell: 5_000,
            },
        ),
    ];
    let (dump, words) = run_mix(LockAlgorithm::Glock, &tenants, 8, 100_000);
    // 8 cores round-robin over 2 tenants → 4 cores × 20 requests each.
    let t0 = dump.counters["service.t0.completed"];
    let t1 = dump.counters["service.t1.completed"];
    assert!(t0 > 0 && t1 > 0);
    assert_eq!(t0 + t1 + dump.counters["service.dropped"], 8 * 20);
    assert_eq!(words[0], t0, "tenant 0's word counts only its completions");
    assert_eq!(words[1], t1, "tenant 1's word counts only its completions");
    for k in ["slo.t0.p99", "slo.t0.p999", "slo.t1.p99", "slo.t1.p999"] {
        assert!(dump.counters.contains_key(k), "missing {k}");
    }
}

/// The `slo::report` helper agrees with the counters the runner published
/// (same dump, same quantile math).
#[test]
fn published_slo_counters_match_report_helper() {
    let t = tenant(0, Addr(0x0200_0000), ArrivalProcess::Poisson { mean_gap: 800 });
    let (dump, _) = run_mix(LockAlgorithm::Ticket, &[t], 4, 200_000);
    let figures = slo::report(&dump).expect("service hists are present");
    for (name, v) in figures {
        assert_eq!(dump.counters[&name], v, "published {name} diverges from report()");
    }
}
