//! Which lock algorithm backs each workload lock.

use glocks_locks::LockAlgorithm;
use glocks_sim_base::LockId;

/// Per-workload-lock algorithm assignment.
///
/// The paper's configurations:
/// * `MCS` bars: highly-contended locks → MCS, the rest → TATAS;
/// * `GL` bars: highly-contended locks → GLocks, the rest → TATAS;
/// * Figure 1's `TATAS-X`: `X` of the highly-contended locks → Ideal.
/// ```
/// use glocks_sim::LockMapping;
/// use glocks_locks::LockAlgorithm;
/// use glocks_sim_base::LockId;
///
/// // RAYTR's configuration: 34 locks, the two hot ones in hardware.
/// let m = LockMapping::hybrid(&[LockId(0), LockId(1)], LockAlgorithm::Glock, 34);
/// assert_eq!(m.algo(LockId(0)), LockAlgorithm::Glock);
/// assert_eq!(m.algo(LockId(5)), LockAlgorithm::Tatas);
/// assert_eq!(m.glock_ids().len(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct LockMapping {
    algos: Vec<LockAlgorithm>,
}

impl LockMapping {
    /// Every lock uses `algo`.
    pub fn uniform(algo: LockAlgorithm, n_locks: usize) -> Self {
        LockMapping { algos: vec![algo; n_locks] }
    }

    /// The paper's hybrid scheme: the listed highly-contended locks use
    /// `hc_algo`, everything else `test-and-test&set`.
    pub fn hybrid(hc_locks: &[LockId], hc_algo: LockAlgorithm, n_locks: usize) -> Self {
        let mut algos = vec![LockAlgorithm::Tatas; n_locks];
        for l in hc_locks {
            algos[l.index()] = hc_algo;
        }
        LockMapping { algos }
    }

    /// Figure 1's `TATAS-X` configuration: the first `x` highly-contended
    /// locks become ideal locks, everything else TATAS.
    pub fn tatas_x(hc_locks: &[LockId], x: usize, n_locks: usize) -> Self {
        let mut algos = vec![LockAlgorithm::Tatas; n_locks];
        for l in hc_locks.iter().take(x) {
            algos[l.index()] = LockAlgorithm::Ideal;
        }
        LockMapping { algos }
    }

    pub fn n_locks(&self) -> usize {
        self.algos.len()
    }

    pub fn algo(&self, lock: LockId) -> LockAlgorithm {
        self.algos[lock.index()]
    }

    /// Lock ids mapped to hardware GLocks.
    pub fn glock_ids(&self) -> Vec<LockId> {
        self.algos
            .iter()
            .enumerate()
            .filter(|(_, a)| **a == LockAlgorithm::Glock)
            .map(|(i, _)| LockId(i as u16))
            .collect()
    }

    /// Short label for reports ("GL", "MCS", ...): the algorithm used for
    /// the first non-TATAS lock, or "TATAS" if uniform.
    pub fn label(&self) -> &'static str {
        self.algos
            .iter()
            .find(|a| **a != LockAlgorithm::Tatas)
            .map(|a| a.name())
            .unwrap_or("TATAS")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hybrid_maps_hc_locks_only() {
        let m = LockMapping::hybrid(&[LockId(1), LockId(3)], LockAlgorithm::Glock, 5);
        assert_eq!(m.algo(LockId(0)), LockAlgorithm::Tatas);
        assert_eq!(m.algo(LockId(1)), LockAlgorithm::Glock);
        assert_eq!(m.algo(LockId(3)), LockAlgorithm::Glock);
        assert_eq!(m.glock_ids(), vec![LockId(1), LockId(3)]);
        assert_eq!(m.label(), "GLock");
    }

    #[test]
    fn tatas_x_takes_a_prefix() {
        let hc = [LockId(0), LockId(2)];
        let m0 = LockMapping::tatas_x(&hc, 0, 4);
        assert_eq!(m0.label(), "TATAS");
        let m1 = LockMapping::tatas_x(&hc, 1, 4);
        assert_eq!(m1.algo(LockId(0)), LockAlgorithm::Ideal);
        assert_eq!(m1.algo(LockId(2)), LockAlgorithm::Tatas);
        let m2 = LockMapping::tatas_x(&hc, 2, 4);
        assert_eq!(m2.algo(LockId(2)), LockAlgorithm::Ideal);
    }

    #[test]
    fn uniform_label() {
        assert_eq!(LockMapping::uniform(LockAlgorithm::Mcs, 3).label(), "MCS");
    }
}
