//! The cycle loop tying all subsystems together.

use crate::checker::{CheckerConfig, ProtocolChecker};
use crate::error::{CoreDiag, DiagnosticSnapshot, GlockDiag, LockDiag, SimError};
use crate::mapping::LockMapping;
use crate::report::{SimReport, TrafficSnapshot};
use crate::snapshot::Snapshot;
use glocks::{GBarrierNetwork, GlockNetwork, GlockPool, Topology};
use glocks_cpu::{Backends, BarrierBackend, Core, LockBackend, LockTracker, Script, Workload};
use glocks_sim_base::fault::{FaultPlan, FaultSite, HardFaultTarget};
use glocks_sim_base::snap::{
    Fingerprint, SnapError, SnapReader, SnapWriter, SNAP_MAGIC, SNAP_VERSION,
};
use glocks_sim_base::ThreadId;
use glocks_energy::{EnergyInputs, EnergyModel};
use glocks_locks::barrier::TreeBarrier;
use glocks_locks::LockAlgorithm;
use glocks_mem::MemorySystem;
use glocks_sim_base::{Addr, CmpConfig, CoreId, Cycle, LockId, TileId};
use std::time::Instant;

/// A barrier backend that gives each consecutive core group its own
/// private combining tree — the multiprogramming substrate of Section V's
/// future work (independent workloads must not synchronize with each
/// other).
pub struct PartitionedBarrier {
    /// `(first_tid, group_barrier)` per partition, in tid order.
    groups: Vec<(usize, TreeBarrier)>,
}

impl PartitionedBarrier {
    /// `sizes` are consecutive group sizes summing to the core count.
    pub fn new(base: Addr, sizes: &[usize], n_cores: usize) -> Self {
        assert_eq!(sizes.iter().sum::<usize>(), n_cores, "partitions must cover all cores");
        let mut groups = Vec::new();
        let mut first = 0usize;
        for (i, &sz) in sizes.iter().enumerate() {
            assert!(sz > 0, "empty barrier partition");
            let gbase = Addr(base.0 + i as u64 * 0x4000);
            groups.push((first, TreeBarrier::new(gbase, sz)));
            first += sz;
        }
        PartitionedBarrier { groups }
    }
}

impl PartitionedBarrier {
    fn group_of(&self, tid: ThreadId) -> (usize, &TreeBarrier) {
        let t = tid.index();
        let (first, barrier) = self
            .groups
            .iter()
            .rev()
            .find(|(f, _)| *f <= t)
            .expect("tid below every partition");
        (*first, barrier)
    }
}

impl BarrierBackend for PartitionedBarrier {
    fn wait(&self, tid: ThreadId) -> Box<dyn Script> {
        let (first, barrier) = self.group_of(tid);
        barrier.wait(ThreadId((tid.index() - first) as u16))
    }

    fn save_state(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        for (_, barrier) in &self.groups {
            barrier.save_state(w)?;
        }
        Ok(())
    }

    fn load_state(&self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        for (_, barrier) in &self.groups {
            barrier.load_state(r)?;
        }
        Ok(())
    }

    fn load_wait_script(
        &self,
        tid: ThreadId,
        r: &mut SnapReader<'_>,
    ) -> Result<Box<dyn Script>, SnapError> {
        let (first, barrier) = self.group_of(tid);
        barrier.load_wait_script(ThreadId((tid.index() - first) as u16), r)
    }
}

/// Simulated-memory layout owned by the runner.
const LOCK_REGION_BASE: u64 = 0x0010_0000;
const LOCK_REGION_STRIDE: u64 = 0x8000;
const BARRIER_REGION: u64 = 0x00F0_0000;

/// Knobs beyond the architectural configuration.
#[derive(Clone, Debug)]
pub struct SimulationOptions {
    /// Run the MESI invariant checker every `n` cycles (0 = never).
    /// Expensive; intended for tests.
    pub check_invariants_every: u64,
    /// Abort if the run exceeds this many cycles.
    pub max_cycles: u64,
    /// Energy model to account with.
    pub energy_model: EnergyModel,
    /// Use a hierarchical GLock topology even when a flat one would fit.
    pub force_hierarchical_glocks: bool,
    /// Barrier partitions for multiprogrammed runs: consecutive core
    /// groups, each with its own private barrier (must sum to the core
    /// count). `None` = one global barrier.
    pub barrier_partitions: Option<Vec<usize>>,
    /// Use the G-line hardware barrier network (reference \[22\]) instead
    /// of the software combining tree. Incompatible with
    /// `barrier_partitions`.
    pub hardware_barrier: bool,
    /// Seeded fault schedule injected into G-lines, the NoC, and the
    /// directories. `None` = a perfectly reliable machine (the paper's
    /// assumption).
    pub fault_plan: Option<FaultPlan>,
    /// Declare the run wedged if no core makes workload-level progress for
    /// this many consecutive cycles (0 = watchdog off). Spin loops do not
    /// count as progress, so a lost-token livelock trips this long before
    /// `max_cycles`.
    pub watchdog_cycles: u64,
    /// Runtime protocol invariant checker (see [`crate::checker`]).
    /// `None` (the default) costs nothing: the cycle loop never consults
    /// it, so paper runs stay bit-identical.
    pub checker: Option<CheckerConfig>,
    /// Abort with [`SimError::WallClockExceeded`] if the run takes longer
    /// than this many host milliseconds (`None` = no budget). Checked every
    /// 4096 simulated cycles; the clock starts at construction, so a
    /// resumed attempt gets a fresh budget. Host-dependent and therefore
    /// **excluded** from the configuration fingerprint: raising the budget
    /// on retry must not orphan existing checkpoints.
    pub wall_clock_limit_ms: Option<u64>,
    /// Event-driven idle skip: after each dense cycle, ask every component
    /// for its next wake cycle and advance `now` directly to the earliest
    /// one, replicating the provably-inert cycles in between (idle/compute
    /// charging, grAC sampling) in O(1). The machine marches through
    /// exactly the dense loop's state trajectory — checkpoints, stats
    /// dumps, and error cycles are byte-identical — so this is a host
    /// execution strategy like `wall_clock_limit_ms` and is likewise
    /// **excluded** from the configuration fingerprint: snapshots
    /// interoperate freely between dense and event-driven runs.
    pub idle_skip: bool,
}

impl Default for SimulationOptions {
    fn default() -> Self {
        SimulationOptions {
            check_invariants_every: 0,
            max_cycles: 2_000_000_000,
            energy_model: EnergyModel::paper_baseline(),
            force_hierarchical_glocks: false,
            barrier_partitions: None,
            hardware_barrier: false,
            fault_plan: None,
            watchdog_cycles: 2_000_000,
            checker: None,
            wall_clock_limit_ms: None,
            idle_skip: true,
        }
    }
}

/// Digest everything that shapes the machine or its trajectory: the codec
/// version, the architectural configuration, the per-lock algorithm
/// assignment, and every deterministic [`SimulationOptions`] knob. Two
/// simulations with equal fingerprints built from the same workloads march
/// through identical states, so a snapshot from one loads into the other.
///
/// `wall_clock_limit_ms` and `idle_skip` are deliberately left out (host
/// policy, not machine spec); the workloads cannot be digested here (they are opaque
/// boxed programs) — the caller must supply the same ones, and the
/// per-component section marks plus shape checks during the load catch
/// most mismatches that slip through.
fn config_fingerprint(cfg: &CmpConfig, mapping: &LockMapping, options: &SimulationOptions) -> u64 {
    let mut fp = Fingerprint::new();
    fp.mix_u64(u64::from(SNAP_VERSION));
    // `CmpConfig` is a flat `Copy + Debug + Eq` tree of integers; its debug
    // form is a canonical encoding of every field.
    fp.mix_str(&format!("{cfg:?}"));
    fp.mix_u64(mapping.n_locks() as u64);
    for i in 0..mapping.n_locks() {
        fp.mix_str(mapping.algo(LockId(i as u16)).name());
    }
    fp.mix_u64(options.check_invariants_every);
    fp.mix_u64(options.max_cycles);
    fp.mix_str(&format!("{:?}", options.energy_model));
    fp.mix_u64(u64::from(options.force_hierarchical_glocks));
    match &options.barrier_partitions {
        None => fp.mix_u64(0),
        Some(sizes) => {
            fp.mix_u64(1 + sizes.len() as u64);
            for &s in sizes {
                fp.mix_u64(s as u64);
            }
        }
    }
    fp.mix_u64(u64::from(options.hardware_barrier));
    match &options.fault_plan {
        None => fp.mix_u64(0),
        Some(plan) => {
            fp.mix_u64(1);
            fp.mix_str(&format!("{plan:?}"));
        }
    }
    fp.mix_u64(options.watchdog_cycles);
    match &options.checker {
        None => fp.mix_u64(0),
        Some(c) => {
            fp.mix_u64(1);
            fp.mix_u64(c.every);
            fp.mix_u64(c.fairness_window);
        }
    }
    fp.value()
}

/// One configured run of the simulated CMP.
pub struct Simulation {
    cfg: CmpConfig,
    options: SimulationOptions,
    mem: MemorySystem,
    cores: Vec<Core>,
    locks: Vec<Box<dyn LockBackend>>,
    barrier: Box<dyn BarrierBackend>,
    tracker: LockTracker,
    glock_nets: Vec<GlockNetwork>,
    gbarrier: Option<GBarrierNetwork>,
    pool: Option<std::rc::Rc<GlockPool>>,
    checker: Option<ProtocolChecker>,
    /// Per-backend failover counters, present only under hard faults.
    failover_counters: Vec<std::rc::Rc<std::cell::Cell<u64>>>,
    /// Fail-back controllers, index-aligned with `glock_nets` (`None` for
    /// networks without a failover backend). Present only under hard
    /// faults; they drive the repair → probe → drain → re-arm lifecycle.
    failback_ctls: Vec<Option<std::rc::Rc<glocks_locks::failover::FailbackCtl>>>,
    has_hard_faults: bool,
    now: Cycle,
    /// Watchdog memory: highest progress-event sum seen and when.
    progress_mark: (u64, Cycle),
    /// Digest of the machine specification; gates snapshot restores.
    fingerprint: u64,
    /// Start of this attempt's wall-clock budget.
    started: Instant,
    /// Idle-skip throttle (host-side wall-clock heuristic, never
    /// serialized): dense cycles to burn before the next fast-forward
    /// attempt, and the exponentially-growing penalty a failed attempt
    /// re-arms it with. Saturated phases thus pay the full component scan
    /// only every few cycles, while a single successful skip resets the
    /// throttle to "attempt every cycle". Skip decisions never change the
    /// machine trajectory (the byte-identity contract), so when to *try*
    /// is free policy.
    skip_cooldown: u64,
    skip_penalty: u64,
}

impl Simulation {
    /// Build a run: one workload per core, a lock mapping over the
    /// workload's locks, and an initial memory image (address, value)
    /// written before the first cycle.
    pub fn new(
        cfg: &CmpConfig,
        mapping: &LockMapping,
        workloads: Vec<Box<dyn Workload>>,
        init: &[(Addr, u64)],
        options: SimulationOptions,
    ) -> Self {
        cfg.validate();
        assert_eq!(
            workloads.len(),
            cfg.num_cores,
            "one workload thread per core"
        );
        let n_locks = mapping.n_locks();
        let mut mem = MemorySystem::new(cfg);
        for &(a, v) in init {
            mem.store_mut().store(a, v);
            // The initialization phase is untimed but leaves its data in
            // the (home) L2 slices, like the real applications' init code.
            mem.prewarm(a.line(cfg.line_bytes));
        }
        // Hardware GLock networks: one per lock mapped to GLock, or the
        // full hardware complement when dynamic sharing is requested.
        let glock_ids = mapping.glock_ids();
        let dynamic = (0..n_locks)
            .any(|i| mapping.algo(LockId(i as u16)) == LockAlgorithm::DynamicGlock);
        assert!(
            !dynamic || glock_ids.is_empty(),
            "static GLock and dynamic GLock mappings cannot be mixed"
        );
        assert!(
            glock_ids.len() <= cfg.glocks.num_hw_locks,
            "{} locks mapped to GLocks but only {} provided in hardware",
            glock_ids.len(),
            cfg.glocks.num_hw_locks
        );
        let mesh = cfg.mesh();
        let topo = if options.force_hierarchical_glocks || mesh.len() > 49 {
            Topology::hierarchical(mesh, 1 + cfg.glocks.max_transmitters_per_line as usize)
        } else {
            Topology::flat(mesh)
        };
        let n_nets = if dynamic { cfg.glocks.num_hw_locks } else { glock_ids.len() };
        let mut glock_nets: Vec<GlockNetwork> = (0..n_nets)
            .map(|_| GlockNetwork::new(&topo, cfg.glocks.gline_latency))
            .collect();
        let mut has_hard_faults = false;
        if let Some(plan) = &options.fault_plan {
            if let Err(e) = plan.validate() {
                panic!("{e}");
            }
            mem.apply_fault_plan(plan);
            if plan.gline.is_active() {
                for (k, net) in glock_nets.iter_mut().enumerate() {
                    net.set_faults(plan.injector(FaultSite::Gline, k as u64));
                }
            }
            has_hard_faults = plan.has_hard_faults();
            for hf in &plan.hard {
                // Intermittent faults: the repair crew arrives at
                // `repair_at` (validation already rejected repairs on
                // unrepairable targets).
                if let Some(repair_at) = hf.repair_at {
                    match hf.target {
                        HardFaultTarget::GlockLine { net }
                        | HardFaultTarget::GlockManager { net, .. }
                        | HardFaultTarget::GlockLeaf { net, .. } => {
                            glock_nets[net].schedule_repair(repair_at);
                        }
                        HardFaultTarget::NocRouter { .. } | HardFaultTarget::Tile { .. } => {
                            unreachable!("validated plan cannot repair a router or tile")
                        }
                    }
                }
                match hf.target {
                    HardFaultTarget::GlockLine { net } => {
                        glock_nets[net].schedule_line_kill(hf.at_cycle);
                    }
                    HardFaultTarget::GlockManager { net, node } => {
                        glock_nets[net].schedule_manager_kill(hf.at_cycle, node);
                    }
                    HardFaultTarget::GlockLeaf { net, core } => {
                        glock_nets[net].schedule_leaf_kill(hf.at_cycle, core);
                    }
                    HardFaultTarget::NocRouter { tile } => {
                        mem.schedule_router_kill(TileId(tile as u16), hf.at_cycle);
                    }
                    // Tile death is a wedge, not a failover scope: the
                    // halted core's work is gone, the watchdog diagnoses
                    // it. Its router dies with it.
                    HardFaultTarget::Tile { core } => {
                        mem.schedule_router_kill(TileId(core as u16), hf.at_cycle);
                    }
                }
            }
        }
        let pool = dynamic
            .then(|| GlockPool::new(glock_nets.iter().map(|n| n.regs()).collect()));
        if let Some(p) = &pool {
            // Let the binding table see network health, so dead physical
            // locks are quarantined out of future bindings.
            p.attach_healths(glock_nets.iter().map(|n| n.health()).collect());
        }
        // Lock backends in LockId order.
        let mut next_glock = 0usize;
        let mut failover_counters = Vec::new();
        let mut failback_ctls: Vec<Option<std::rc::Rc<glocks_locks::failover::FailbackCtl>>> =
            vec![None; n_nets];
        let locks: Vec<Box<dyn LockBackend>> = (0..n_locks)
            .map(|i| {
                let algo = mapping.algo(LockId(i as u16));
                let base = Addr(LOCK_REGION_BASE + i as u64 * LOCK_REGION_STRIDE);
                let regs = if algo == LockAlgorithm::Glock {
                    let k = next_glock;
                    next_glock += 1;
                    if has_hard_faults {
                        // Survivable flavor of the GLock driver: healthy
                        // runs are step-identical, but a detected network
                        // death reroutes onto a software fallback. Only
                        // built under a hard-fault plan, so fault-free
                        // stats dumps keep their exact schema and values.
                        let b = glocks_locks::failover::FailoverGlockBackend::new(
                            glock_nets[k].regs(),
                            glock_nets[k].health(),
                            base,
                            cfg.num_cores,
                        );
                        failover_counters.push(b.failover_count());
                        failback_ctls[k] = Some(b.failback_ctl());
                        return Box::new(b) as Box<dyn LockBackend>;
                    }
                    Some(glock_nets[k].regs())
                } else {
                    None
                };
                if algo == LockAlgorithm::DynamicGlock {
                    return Box::new(glocks_locks::dynamic::DynamicGlockBackend::new(
                        std::rc::Rc::clone(pool.as_ref().expect("dynamic pool")),
                        i as u16,
                        base,
                        cfg.num_cores,
                    )) as Box<dyn LockBackend>;
                }
                let mp = matches!(algo, LockAlgorithm::MpLock | LockAlgorithm::SyncBuf)
                    .then(|| (mem.mp_fabric(), i as u16));
                if algo == LockAlgorithm::SyncBuf {
                    mem.set_mp_latency(i as u16, glocks_mem::mplock::SYNC_BUF_LATENCY);
                }
                algo.make_backend(base, cfg.num_cores, regs, mp)
            })
            .collect();
        let mut gbarrier = None;
        let barrier: Box<dyn BarrierBackend> = match (&options.barrier_partitions, options.hardware_barrier) {
            (Some(_), true) => panic!("hardware barrier cannot be partitioned"),
            (Some(sizes), false) => Box::new(PartitionedBarrier::new(
                Addr(BARRIER_REGION),
                sizes,
                cfg.num_cores,
            )),
            (None, true) => {
                let net = GBarrierNetwork::new(&topo, cfg.glocks.gline_latency);
                let backend = glocks_locks::gbarrier_backend::GBarrierBackend::new(net.regs());
                gbarrier = Some(net);
                Box::new(backend)
            }
            (None, false) => Box::new(TreeBarrier::new(Addr(BARRIER_REGION), cfg.num_cores)),
        };
        let tracker = LockTracker::new(n_locks, cfg.num_cores);
        let mut cores: Vec<Core> = workloads
            .into_iter()
            .enumerate()
            .map(|(i, w)| Core::new(CoreId(i as u16), cfg.issue_width, w))
            .collect();
        if let Some(plan) = &options.fault_plan {
            for hf in &plan.hard {
                if let HardFaultTarget::Tile { core } = hf.target {
                    cores[core].schedule_halt(hf.at_cycle);
                }
            }
        }
        let checker = options
            .checker
            .map(|c| ProtocolChecker::new(c, n_locks, cfg.num_cores));
        let fingerprint = config_fingerprint(cfg, mapping, &options);
        Simulation {
            cfg: *cfg,
            options,
            mem,
            cores,
            locks,
            barrier,
            tracker,
            glock_nets,
            gbarrier,
            pool,
            checker,
            failover_counters,
            failback_ctls,
            has_hard_faults,
            now: 0,
            progress_mark: (0, 0),
            fingerprint,
            started: Instant::now(),
            skip_cooldown: 0,
            skip_penalty: 0,
        }
    }

    /// Rebuild the machine from `cfg`/`mapping`/`workloads`/`options`
    /// (which must match what the snapshot was taken under — the
    /// fingerprint enforces the parts it can see) and load `snapshot`'s
    /// state into it. The returned simulation continues exactly where the
    /// checkpointed one stood; stepping it produces the same states and,
    /// at the end, a byte-identical stats dump.
    pub fn resume(
        cfg: &CmpConfig,
        mapping: &LockMapping,
        workloads: Vec<Box<dyn Workload>>,
        init: &[(Addr, u64)],
        options: SimulationOptions,
        snapshot: &Snapshot,
    ) -> Result<Self, SnapError> {
        let mut sim = Simulation::new(cfg, mapping, workloads, init, options);
        sim.load_snapshot(snapshot)?;
        Ok(sim)
    }

    /// The cycle boundary the machine currently sits at.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Digest of the specification this machine was built from (what a
    /// snapshot's header must carry to be loadable here).
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Advance every non-core device (memory system, GLock networks,
    /// hardware barrier) by the current cycle — shared between the main
    /// loop and the post-run drain.
    fn tick_devices(&mut self) {
        self.mem.tick(self.now);
        for net in &mut self.glock_nets {
            net.tick(self.now);
        }
        // Fail-back controllers tick after their networks so they observe
        // death verdicts and repairs in the same device phase.
        for ctl in self.failback_ctls.iter().flatten() {
            ctl.tick(self.now);
        }
        if let Some(b) = self.gbarrier.as_mut() {
            b.tick(self.now);
        }
    }

    /// Capture the full diagnostic picture for a [`SimError`].
    fn snapshot(&self) -> Box<DiagnosticSnapshot> {
        let cores = self
            .cores
            .iter()
            .map(|c| CoreDiag {
                id: c.id(),
                activity: c.activity(),
                progress_events: c.progress_events(),
            })
            .collect();
        let locks = (0..self.tracker.n_locks())
            .map(|i| {
                let l = LockId(i as u16);
                LockDiag {
                    lock: l,
                    holder: self.tracker.holder(l),
                    acquires: self.tracker.acquires(l),
                }
            })
            .collect();
        let glocks = self
            .glock_nets
            .iter()
            .enumerate()
            .map(|(index, net)| GlockDiag {
                index,
                holder: net.holder(),
                waiting: net.n_waiting(),
                stats: net.stats(),
            })
            .collect();
        Box::new(DiagnosticSnapshot {
            cycle: self.now,
            cores,
            locks,
            glocks,
            mem: self.mem.diag(),
        })
    }

    /// Advance the machine by one cycle of the parallel phase. Returns
    /// `Ok(true)` once every core has finished (call [`Simulation::finish`]
    /// next), `Ok(false)` while work remains, or the same structured errors
    /// [`Simulation::run`] would surface. After an `Ok(false)` the machine
    /// sits at a cycle boundary and [`Simulation::checkpoint`] may be
    /// taken.
    pub fn step(&mut self) -> Result<bool, SimError> {
        // Already complete (e.g. resumed from a checkpoint taken at the
        // finish boundary): devices already ticked this cycle, so ticking
        // again would let the drain diverge from the uninterrupted run.
        if self.cores.iter().all(Core::is_finished) {
            return Ok(true);
        }
        let mut all_done = true;
        let mut progress_sum = 0u64;
        {
            let backends = Backends { locks: &self.locks, barrier: self.barrier.as_ref() };
            for core in &mut self.cores {
                core.tick(self.now, &mut self.mem, &backends, &mut self.tracker);
                all_done &= core.is_finished();
                progress_sum += core.progress_events();
            }
        }
        self.tick_devices();
        self.tracker.sample();
        if self.options.check_invariants_every > 0
            && self.now.is_multiple_of(self.options.check_invariants_every)
        {
            self.mem.check_invariants();
            for net in &self.glock_nets {
                net.assert_token_invariants();
            }
        }
        let violation = match self.checker.as_mut() {
            Some(ck) if ck.due(self.now) => {
                ck.check(self.now, &self.tracker, &self.mem, &self.glock_nets, &self.failback_ctls)
            }
            _ => None,
        };
        if let Some(detail) = violation {
            return Err(SimError::InvariantViolation {
                detail,
                snapshot: self.snapshot(),
            });
        }
        if all_done {
            return Ok(true);
        }
        if progress_sum > self.progress_mark.0 {
            self.progress_mark = (progress_sum, self.now);
        } else if self
            .cores
            .iter()
            .all(|c| c.is_finished() || c.sleeping_until(self.now).is_some())
        {
            // Open-loop lull: every unfinished core is deliberately asleep
            // waiting for its next arrival (`Action::WaitUntil`). Time
            // passing toward a known wake cycle is progress, not a wedge.
            self.progress_mark.1 = self.now;
        } else if self.options.watchdog_cycles > 0
            && self.now - self.progress_mark.1 >= self.options.watchdog_cycles
        {
            return Err(SimError::NoForwardProgress {
                window: self.options.watchdog_cycles,
                snapshot: self.snapshot(),
            });
        }
        self.now += 1;
        if self.now >= self.options.max_cycles {
            return Err(SimError::MaxCyclesExceeded {
                limit: self.options.max_cycles,
                snapshot: self.snapshot(),
            });
        }
        // The wall-clock budget is sampled coarsely: `Instant::now` every
        // cycle would dominate the loop.
        if let Some(limit_ms) = self.options.wall_clock_limit_ms {
            if self.now & 0xFFF == 0 && self.started.elapsed().as_millis() as u64 >= limit_ms {
                return Err(SimError::WallClockExceeded {
                    limit_ms,
                    snapshot: self.snapshot(),
                });
            }
        }
        Ok(false)
    }

    /// One dense cycle plus, when `idle_skip` is enabled, an event-driven
    /// fast-forward: advance `now` directly to the earliest cycle at which
    /// any component can act, replicating the provably-inert cycles in
    /// between. `checkpoint_cadence` (0 = none) keeps the skip from jumping
    /// over a cycle boundary the caller wants to checkpoint at.
    ///
    /// The skipped span is never observable: every cycle a component
    /// reported it could act on — and every cycle with a scheduled side
    /// effect (invariant sweep, checker visit, stats sample, watchdog
    /// deadline, checkpoint boundary, cycle limit) — is executed densely by
    /// [`Simulation::step`], so the machine marches through exactly the
    /// dense loop's state trajectory.
    pub fn step_fast(&mut self, checkpoint_cadence: u64) -> Result<bool, SimError> {
        let done = self.step()?;
        if !done && self.options.idle_skip {
            if self.skip_cooldown > 0 {
                // A recent attempt found a hot component; don't pay the
                // full scan again just yet. Pure wall-clock policy — the
                // cycles in between run densely either way.
                self.skip_cooldown -= 1;
            } else if self.fast_forward(checkpoint_cadence)? {
                self.skip_penalty = 0;
            } else {
                self.skip_penalty = (self.skip_penalty * 2).clamp(1, 32);
                self.skip_cooldown = self.skip_penalty;
            }
        }
        Ok(done)
    }

    /// The event-driven half of [`Simulation::step_fast`]: compute the
    /// earliest pending wake over all components, clamp it to the nearest
    /// scheduled side effect, and jump there — charging the cores'
    /// activity breakdowns and the tracker's grAC samples for the skipped
    /// cycles in one batch, exactly as the dense loop would have.
    fn fast_forward(&mut self, checkpoint_cadence: u64) -> Result<bool, SimError> {
        let now = self.now;
        // Earliest component wake. `Some(t <= now)` means hot — tick
        // densely, no skip. `None` means inert until some *other*
        // component acts; if everything is inert only the scheduled side
        // effects below bound the jump.
        let mut wake: Option<Cycle> = None;
        macro_rules! fold {
            ($ev:expr) => {
                match $ev {
                    Some(t) if t <= now => return Ok(false),
                    Some(t) => wake = Some(wake.map_or(t, |w: Cycle| w.min(t))),
                    None => {}
                }
            };
        }
        for core in &self.cores {
            fold!(core.next_event(now));
        }
        fold!(self.mem.next_event(now));
        for net in &self.glock_nets {
            fold!(net.next_event(now));
        }
        for ctl in self.failback_ctls.iter().flatten() {
            fold!(ctl.next_event(now));
        }
        if let Some(b) = &self.gbarrier {
            fold!(b.next_event(now));
        }
        // Scheduled side effects: cycles the dense loop does something on
        // besides ticking components. Each must be *executed*, so the jump
        // lands on (not past) the nearest one.
        let mut target = wake.unwrap_or(Cycle::MAX);
        if self.options.check_invariants_every > 0 {
            target = target.min(now.next_multiple_of(self.options.check_invariants_every));
        }
        if let Some(ck) = &self.options.checker {
            target = target.min(now.next_multiple_of(ck.every));
        }
        if let Some(sample_at) = glocks_stats::next_sample_cycle(now) {
            // Typed-stats time series (e.g. per-router queue depths) are
            // appended inside device ticks on sample cycles.
            target = target.min(sample_at);
        }
        let all_sleeping = self
            .cores
            .iter()
            .all(|c| c.is_finished() || c.sleeping_until(now).is_some());
        if !all_sleeping && self.options.watchdog_cycles > 0 {
            // Land densely on the watchdog's deadline so NoForwardProgress
            // surfaces at the identical cycle it would under the dense
            // loop. (When every unfinished core is deliberately asleep the
            // dense loop re-arms the watchdog each cycle instead — that is
            // replicated after the jump below.)
            target = target.min(self.progress_mark.1 + self.options.watchdog_cycles);
        }
        // `step` raises MaxCyclesExceeded *after* executing the cycle that
        // reaches the limit, so that cycle must run densely.
        target = target.min(self.options.max_cycles.saturating_sub(1));
        if checkpoint_cadence > 0 {
            target = target.min(now.next_multiple_of(checkpoint_cadence));
        }
        if target <= now {
            return Ok(false);
        }
        let k = target - now;
        // Replicate the `k` skipped cycles' observable effects in O(1):
        // per-core activity charges (and compute countdowns), and one grAC
        // sample per cycle. Nothing else mutates on an inert cycle — that
        // is the quiescence contract each `next_event` implements.
        for core in &mut self.cores {
            core.skip_ahead(now, k);
        }
        self.tracker.sample_n(k);
        if all_sleeping {
            // The dense loop re-arms the watchdog on every all-sleeping
            // cycle; the last skipped cycle is `target - 1`.
            self.progress_mark.1 = target - 1;
        }
        self.now = target;
        // The dense loop samples the wall clock every 4096 cycles; check
        // once if the jump crossed any such boundary.
        if let Some(limit_ms) = self.options.wall_clock_limit_ms {
            if (target >> 12) > (now >> 12)
                && self.started.elapsed().as_millis() as u64 >= limit_ms
            {
                return Err(SimError::WallClockExceeded {
                    limit_ms,
                    snapshot: self.snapshot(),
                });
            }
        }
        Ok(true)
    }

    /// Run the parallel phase to completion and produce the report, or a
    /// structured error with a diagnostic snapshot if the run wedges.
    pub fn run(mut self) -> Result<(SimReport, MemorySystem), SimError> {
        while !self.step_fast(0)? {}
        self.finish()
    }

    /// [`Simulation::run`] with a periodic auto-checkpoint: every `every`
    /// cycles (`0` = never) the machine image is handed to `sink` — the
    /// caller decides where it goes (typically an atomically-renamed file).
    /// A component refusing to serialize surfaces as
    /// [`SimError::CheckpointFailed`] rather than silently skipping the
    /// checkpoint: a crash-safety net that is not actually there must not
    /// look like one that is.
    pub fn run_with_checkpoints(
        mut self,
        every: u64,
        sink: &mut dyn FnMut(Snapshot),
    ) -> Result<(SimReport, MemorySystem), SimError> {
        while !self.step_fast(every)? {
            if every > 0 && self.now.is_multiple_of(every) {
                match self.checkpoint() {
                    Ok(snap) => sink(snap),
                    Err(e) => {
                        return Err(SimError::CheckpointFailed {
                            detail: e.to_string(),
                            snapshot: self.snapshot(),
                        })
                    }
                }
            }
        }
        self.finish()
    }

    /// Serialize the complete machine state at the current cycle boundary:
    /// header (magic, codec version, fingerprint, cycle), then every
    /// subsystem in a fixed walk order. Fails with
    /// [`SnapError::Unsupported`] if any component (an exotic workload, a
    /// backend without snapshot support) has not opted into checkpointing.
    pub fn checkpoint(&self) -> Result<Snapshot, SnapError> {
        let mut w = SnapWriter::new();
        w.u32(SNAP_MAGIC);
        w.u32(SNAP_VERSION);
        w.u64(self.fingerprint);
        w.u64(self.now);
        w.mark("sim");
        w.u64(self.progress_mark.0);
        w.u64(self.progress_mark.1);
        w.usize(self.cores.len());
        for core in &self.cores {
            core.save_state(&mut w)?;
        }
        self.tracker.save_state(&mut w);
        self.mem.save_state(&mut w);
        w.usize(self.glock_nets.len());
        for net in &self.glock_nets {
            net.save_state(&mut w);
        }
        w.bool(self.gbarrier.is_some());
        if let Some(b) = &self.gbarrier {
            b.save_state(&mut w);
        }
        w.bool(self.pool.is_some());
        if let Some(p) = &self.pool {
            p.save_state(&mut w);
        }
        w.usize(self.locks.len());
        for backend in &self.locks {
            backend.save_state(&mut w)?;
        }
        self.barrier.save_state(&mut w)?;
        w.bool(self.checker.is_some());
        if let Some(ck) = &self.checker {
            ck.save_state(&mut w);
        }
        // The typed-stats registry records live histograms during the run;
        // without it a resumed dump would be missing every pre-checkpoint
        // sample.
        let stats_on = glocks_stats::is_enabled();
        w.bool(stats_on);
        if stats_on {
            glocks_stats::save_registry(&mut w);
        }
        w.mark("sim-end");
        Ok(Snapshot::from_trusted(w.into_bytes()))
    }

    /// Load a [`Snapshot`] into this freshly constructed machine (the
    /// inverse walk of [`Simulation::checkpoint`]). The snapshot's
    /// fingerprint must match this machine's; shape checks and section
    /// marks guard the rest.
    pub fn load_snapshot(&mut self, snapshot: &Snapshot) -> Result<(), SnapError> {
        if snapshot.fingerprint() != self.fingerprint {
            return Err(SnapError::FingerprintMismatch {
                found: snapshot.fingerprint(),
                expected: self.fingerprint,
            });
        }
        let mut r = snapshot.body();
        r.expect("sim")?;
        let progress_mark = (r.u64()?, r.u64()?);
        if r.usize()? != self.cores.len() {
            return Err(SnapError::Corrupt { what: "core count" });
        }
        {
            let backends = Backends { locks: &self.locks, barrier: self.barrier.as_ref() };
            for core in &mut self.cores {
                core.load_state(&mut r, &backends)?;
            }
        }
        self.tracker.load_state(&mut r)?;
        self.mem.load_state(&mut r)?;
        if r.usize()? != self.glock_nets.len() {
            return Err(SnapError::Corrupt { what: "glock network count" });
        }
        for net in &mut self.glock_nets {
            net.load_state(&mut r)?;
        }
        if r.bool()? != self.gbarrier.is_some() {
            return Err(SnapError::Corrupt { what: "gbarrier presence" });
        }
        if let Some(b) = self.gbarrier.as_mut() {
            b.load_state(&mut r)?;
        }
        if r.bool()? != self.pool.is_some() {
            return Err(SnapError::Corrupt { what: "glock pool presence" });
        }
        if let Some(p) = &self.pool {
            p.load_state(&mut r)?;
        }
        if r.usize()? != self.locks.len() {
            return Err(SnapError::Corrupt { what: "lock backend count" });
        }
        for backend in &self.locks {
            backend.load_state(&mut r)?;
        }
        self.barrier.load_state(&mut r)?;
        if r.bool()? != self.checker.is_some() {
            return Err(SnapError::Corrupt { what: "checker presence" });
        }
        if let Some(ck) = self.checker.as_mut() {
            ck.load_state(&mut r)?;
        }
        let stats_on = r.bool()?;
        if stats_on != glocks_stats::is_enabled() {
            return Err(SnapError::Corrupt { what: "stats enablement mismatch" });
        }
        if stats_on {
            glocks_stats::restore_registry(&mut r)?;
        }
        r.expect("sim-end")?;
        if r.remaining() != 0 {
            return Err(SnapError::Corrupt { what: "trailing snapshot bytes" });
        }
        self.now = snapshot.cycle();
        self.progress_mark = progress_mark;
        Ok(())
    }

    /// Post-run epilogue: drain in-flight traffic, verify quiescence, and
    /// assemble the report. Call after [`Simulation::step`] returned
    /// `Ok(true)`.
    pub fn finish(mut self) -> Result<(SimReport, MemorySystem), SimError> {
        let finish_at = self.now;
        // Drain in-flight writebacks so the traffic/energy totals settle.
        // The G-line networks only tick while they report pending work, so
        // the per-iteration cost is O(active components) — a long memory
        // drain does not keep re-walking idle lock/barrier automata.
        const DRAIN_CAP: u64 = 1_000_000;
        let mut drain = 0;
        while !self.mem.is_quiescent() && drain < DRAIN_CAP {
            self.now += 1;
            drain += 1;
            self.mem.tick(self.now);
            for net in &mut self.glock_nets {
                if net.next_event(self.now).is_some_and(|t| t <= self.now) {
                    net.tick(self.now);
                }
            }
            // Controller ticks are O(1) Cell reads when nothing is
            // happening, so the drain ticks them unconditionally — a
            // repair installing mid-drain must still be observed.
            for ctl in self.failback_ctls.iter().flatten() {
                ctl.tick(self.now);
            }
            if let Some(b) = self.gbarrier.as_mut() {
                if b.next_event(self.now).is_some() {
                    b.tick(self.now);
                }
            }
        }
        if !self.mem.is_quiescent() {
            return Err(SimError::DrainStalled { waited: drain, snapshot: self.snapshot() });
        }
        if !self.tracker.all_quiet() {
            return Err(SimError::ResidualLockState {
                detail: "locks still held after the run".into(),
                snapshot: self.snapshot(),
            });
        }
        if let Some(p) = &self.pool {
            if !p.is_quiescent() {
                return Err(SimError::ResidualLockState {
                    detail: "dynamic GLock bindings leaked".into(),
                    snapshot: self.snapshot(),
                });
            }
        }

        let n_locks = self.tracker.n_locks();
        let breakdowns: Vec<_> = self.cores.iter().map(|c| *c.breakdown()).collect();
        let traffic = TrafficSnapshot::from_stats(self.mem.traffic());
        let instructions = breakdowns.iter().map(|b| b.instructions).sum();
        let live_core_cycles = self
            .cores
            .iter()
            .map(|c| c.finished_at().unwrap_or(finish_at))
            .sum();
        let glocks: Vec<_> = self.glock_nets.iter().map(|n| n.stats()).collect();
        // The hardware barrier rides the same G-line technology: its
        // signals and controllers join the energy accounting.
        let gbarrier_signals = self.gbarrier.as_ref().map(|b| b.signals()).unwrap_or(0);
        let gline_networks = self.glock_nets.len() + usize::from(self.gbarrier.is_some());
        let glock_controllers =
            gline_networks.saturating_mul(2 * self.cfg.num_cores) as u64; // leaves + managers bound
        let inputs = EnergyInputs {
            cycles: finish_at,
            n_tiles: self.cfg.num_cores,
            instructions,
            live_core_cycles,
            mem_counters: self.mem.counters(),
            noc_hops: traffic.total_hops,
            noc_byte_hops: traffic.total_bytes(),
            gline_signals: glocks.iter().map(|g| g.signals).sum::<u64>() + gbarrier_signals,
            glock_controllers,
        };
        let energy = self.options.energy_model.account(&inputs);
        let finished_at_vec = self
            .cores
            .iter()
            .map(|c| c.finished_at().unwrap_or(finish_at))
            .collect();
        // End-of-run stats publication: totals the components already track
        // are copied into the typed-stats registry so the snapshot is
        // self-contained. Live histograms were recorded during the run.
        let stats = if glocks_stats::is_enabled() {
            for core in &self.cores {
                core.publish_stats();
            }
            self.tracker.publish_stats();
            self.mem.publish_stats();
            for net in &self.glock_nets {
                net.publish_stats();
            }
            glocks_stats::set(glocks_stats::counter("sim.cycles"), finish_at);
            glocks_stats::set(glocks_stats::counter("sim.instructions"), instructions);
            glocks_stats::set(
                glocks_stats::counter("sim.gbarrier.signals"),
                gbarrier_signals,
            );
            // Survivability keys exist only under a hard-fault plan, so
            // fault-free dumps keep their golden schema.
            if self.has_hard_faults {
                let failovers = self.failover_counters.iter().map(|c| c.get()).sum::<u64>()
                    + self.pool.as_ref().map_or(0, |p| p.stats().failovers);
                glocks_stats::set(glocks_stats::counter("sim.failovers"), failovers);
            }
            // Repair/fail-back keys exist only when the plan schedules a
            // repair, and per-site soft-fault keys only when that site's
            // rates are active — fault-free dumps keep their golden schema.
            let plan = self.options.fault_plan.as_ref();
            if plan.is_some_and(|p| p.has_repairs()) {
                let repairs = self.glock_nets.iter().map(|n| n.health().repairs()).sum::<u64>();
                let failbacks = self
                    .failback_ctls
                    .iter()
                    .flatten()
                    .map(|c| c.failbacks())
                    .sum::<u64>();
                glocks_stats::set(glocks_stats::counter("sim.repairs"), repairs);
                glocks_stats::set(glocks_stats::counter("sim.failbacks"), failbacks);
            }
            let publish_site = |site: &str, stats: glocks_sim_base::fault::FaultStats| {
                glocks_stats::set(
                    glocks_stats::counter(&format!("faults.{site}.drops")),
                    stats.dropped,
                );
                glocks_stats::set(
                    glocks_stats::counter(&format!("faults.{site}.delays")),
                    stats.delayed,
                );
                glocks_stats::set(
                    glocks_stats::counter(&format!("faults.{site}.dups")),
                    stats.duplicated,
                );
            };
            if plan.is_some_and(|p| p.gline.is_active()) {
                let mut total = glocks_sim_base::fault::FaultStats::default();
                for s in self.glock_nets.iter().filter_map(|n| n.fault_stats()) {
                    total.decided += s.decided;
                    total.dropped += s.dropped;
                    total.delayed += s.delayed;
                    total.duplicated += s.duplicated;
                }
                publish_site("gline", total);
            }
            if plan.is_some_and(|p| p.noc.is_active()) {
                publish_site("noc", self.mem.noc_fault_stats().unwrap_or_default());
            }
            if plan.is_some_and(|p| p.dir.is_active()) {
                publish_site("dir", self.mem.dir_fault_stats().unwrap_or_default());
            }
            if let Some(ck) = &self.checker {
                ck.publish_stats();
            }
            // Open-loop SLO report: adds `slo.*` keys only when a service
            // workload registered `service.*` histograms, so closed-loop
            // dumps keep their golden schema.
            glocks_arrivals::slo::publish();
            Some(glocks_stats::snapshot())
        } else {
            None
        };
        let report = SimReport {
            cycles: finish_at,
            breakdowns,
            traffic,
            energy,
            ed2p: energy.ed2p(finish_at),
            lcr: self.tracker.lcr(),
            acquires: (0..n_locks)
                .map(|i| self.tracker.acquires(LockId(i as u16)))
                .collect(),
            mean_wait: (0..n_locks)
                .map(|i| self.tracker.mean_wait(LockId(i as u16)))
                .collect(),
            glocks,
            finished_at: finished_at_vec,
            pool: self.pool.as_ref().map(|p| p.stats()),
            stats,
        };
        Ok((report, self.mem))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glocks_cpu::Action;
    use glocks_mem::MemOp;

    /// Minimal SCTR-style workload for runner tests.
    struct MiniCounter {
        iters: u64,
        counter: Addr,
        phase: u8,
        seen: u64,
    }

    impl Workload for MiniCounter {
        fn next(&mut self, last: u64) -> Action {
            match self.phase {
                0 => {
                    if self.iters == 0 {
                        return Action::Done;
                    }
                    self.phase = 1;
                    Action::Acquire(LockId(0))
                }
                1 => {
                    self.phase = 2;
                    Action::Mem(MemOp::Load(self.counter))
                }
                2 => {
                    self.seen = last;
                    self.phase = 3;
                    Action::Mem(MemOp::Store(self.counter, self.seen + 1))
                }
                3 => {
                    self.iters -= 1;
                    self.phase = 4;
                    Action::Release(LockId(0))
                }
                _ => {
                    self.phase = 0;
                    Action::Barrier
                }
            }
        }
    }

    fn mini_workloads(cfg: &CmpConfig, iters: u64) -> Vec<Box<dyn Workload>> {
        (0..cfg.num_cores)
            .map(|_| {
                Box::new(MiniCounter { iters, counter: Addr(0x200_0000), phase: 0, seen: 0 })
                    as Box<dyn Workload>
            })
            .collect()
    }

    fn run_with(algo: LockAlgorithm, cores: usize, iters: u64) -> (SimReport, MemorySystem) {
        let cfg = CmpConfig::paper_baseline().with_cores(cores);
        let mapping = LockMapping::uniform(algo, 1);
        let opts = SimulationOptions { check_invariants_every: 5000, ..Default::default() };
        let sim = Simulation::new(&cfg, &mapping, mini_workloads(&cfg, iters), &[], opts);
        sim.run().expect("fault-free run must complete")
    }

    fn run_partitioned(partitions: Option<Vec<usize>>, cores: usize, iters: u64) -> (SimReport, MemorySystem) {
        let cfg = CmpConfig::paper_baseline().with_cores(cores);
        let mapping = LockMapping::uniform(LockAlgorithm::Mcs, 1);
        let opts = SimulationOptions { barrier_partitions: partitions, ..Default::default() };
        let sim = Simulation::new(&cfg, &mapping, mini_workloads(&cfg, iters), &[], opts);
        sim.run().expect("fault-free run must complete")
    }

    #[test]
    fn full_stack_mcs_run_is_correct() {
        let (report, mem) = run_with(LockAlgorithm::Mcs, 8, 4);
        assert_eq!(mem.store().load(Addr(0x200_0000)), 32);
        assert_eq!(report.acquires[0], 32);
        assert!(report.cycles > 0);
        let f = report.avg_fractions();
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(f[2] > 0.2, "contended MCS should show lock time, got {f:?}");
    }

    #[test]
    fn full_stack_glock_run_is_correct_and_faster() {
        let (gl, mem) = run_with(LockAlgorithm::Glock, 8, 4);
        assert_eq!(mem.store().load(Addr(0x200_0000)), 32);
        let (mcs, _) = run_with(LockAlgorithm::Mcs, 8, 4);
        assert!(
            gl.cycles < mcs.cycles,
            "GLock {} !< MCS {}",
            gl.cycles,
            mcs.cycles
        );
        assert!(gl.traffic.total_bytes() < mcs.traffic.total_bytes());
        assert!(gl.ed2p < mcs.ed2p, "ED²P must improve too");
        assert_eq!(gl.glocks.len(), 1);
        assert_eq!(gl.glocks[0].grants, 32);
    }

    #[test]
    fn lcr_sums_to_one_when_contended() {
        let (report, _) = run_with(LockAlgorithm::Mcs, 8, 4);
        let total: f64 = report.lcr.iter().flatten().sum();
        assert!((total - 1.0).abs() < 1e-9, "Eq. 2 violated: {total}");
    }

    #[test]
    fn init_image_is_applied() {
        let cfg = CmpConfig::paper_baseline().with_cores(4);
        let mapping = LockMapping::uniform(LockAlgorithm::Tatas, 1);
        let init = [(Addr(0x200_0000), 100u64)];
        let sim = Simulation::new(
            &cfg,
            &mapping,
            mini_workloads(&cfg, 1),
            &init,
            SimulationOptions::default(),
        );
        let (_, mem) = sim.run().expect("fault-free run must complete");
        assert_eq!(mem.store().load(Addr(0x200_0000)), 104);
    }

    #[test]
    fn single_partition_behaves_like_global_barrier() {
        let (global, gmem) = run_partitioned(None, 8, 2);
        let (single, smem) = run_partitioned(Some(vec![8]), 8, 2);
        assert_eq!(gmem.store().load(Addr(0x200_0000)), 16);
        assert_eq!(smem.store().load(Addr(0x200_0000)), 16);
        assert_eq!(
            global.cycles, single.cycles,
            "one partition covering every core is exactly the global barrier"
        );
    }

    #[test]
    fn uneven_partitions_complete_correctly() {
        // Groups of 3 and 5 share the lock but synchronize independently.
        let (report, mem) = run_partitioned(Some(vec![3, 5]), 8, 3);
        assert_eq!(mem.store().load(Addr(0x200_0000)), 24);
        assert_eq!(report.acquires[0], 24);
    }

    #[test]
    #[should_panic(expected = "partitions must cover all cores")]
    fn non_covering_partitions_rejected() {
        let _ = run_partitioned(Some(vec![3, 3]), 8, 1);
    }

    #[test]
    fn glock_network_death_fails_over_and_completes() {
        use glocks_sim_base::FaultPlan;
        let cfg = CmpConfig::paper_baseline().with_cores(8);
        let mapping = LockMapping::uniform(LockAlgorithm::Glock, 1);
        // Baseline: the fault-free acquire count.
        let sim = Simulation::new(
            &cfg,
            &mapping,
            mini_workloads(&cfg, 4),
            &[],
            SimulationOptions::default(),
        );
        let (clean, _) = sim.run().expect("fault-free run");
        // Kill the lock network mid-run; the checker rides along.
        let mut plan = FaultPlan::seeded(11);
        plan.kill_all_glock_networks(1, 500, 2_000);
        let opts = SimulationOptions {
            fault_plan: Some(plan),
            checker: Some(CheckerConfig::default()),
            ..Default::default()
        };
        let sim = Simulation::new(&cfg, &mapping, mini_workloads(&cfg, 4), &[], opts);
        let (report, mem) = sim.run().expect("survivable run must complete");
        assert_eq!(mem.store().load(Addr(0x200_0000)), 32, "no lost increments");
        assert_eq!(
            report.acquires[0], clean.acquires[0],
            "failover must preserve the acquire count"
        );
        assert!(
            report.glocks[0].grants < clean.glocks[0].grants,
            "the dead network cannot have served every tenure"
        );
    }

    #[test]
    fn intermittent_flapping_is_bounded_by_hysteresis() {
        use glocks_sim_base::fault::{HardFault, HardFaultTarget};
        use glocks_sim_base::FaultPlan;
        let cfg = CmpConfig::paper_baseline().with_cores(8);
        let mapping = LockMapping::uniform(LockAlgorithm::Glock, 1);
        let iters = 200;
        let sim = Simulation::new(
            &cfg,
            &mapping,
            mini_workloads(&cfg, iters),
            &[],
            SimulationOptions::default(),
        );
        let (clean, _) = sim.run().expect("fault-free run");
        // Two blink episodes on the same network: kill, repair, re-kill
        // after the first fail-back, repair again. The hysteresis (probe
        // score + dwell) must promote the rebooted hardware exactly once
        // per episode — bounded flapping, not thrash. Detection takes
        // ~47k cycles of retransmission backoff from each kill, so the
        // second episode starts well after the first fail-back (~52k).
        let mut plan = FaultPlan::seeded(5);
        plan.hard.push(HardFault::intermittent(
            1_000,
            40_000,
            HardFaultTarget::GlockLine { net: 0 },
        ));
        plan.hard.push(HardFault::intermittent(
            60_000,
            110_000,
            HardFaultTarget::GlockLine { net: 0 },
        ));
        let opts = SimulationOptions {
            fault_plan: Some(plan),
            checker: Some(CheckerConfig::default()),
            ..Default::default()
        };
        glocks_stats::enable(glocks_stats::StatsConfig::default());
        let sim = Simulation::new(&cfg, &mapping, mini_workloads(&cfg, iters), &[], opts);
        let (report, mem) = sim.run().expect("intermittent faults must be survived");
        glocks_stats::disable();
        assert_eq!(
            mem.store().load(Addr(0x200_0000)),
            8 * iters,
            "no lost increments across two repair round trips"
        );
        assert_eq!(
            report.acquires[0], clean.acquires[0],
            "repair and fail-back must preserve the acquire count"
        );
        let dump = report.stats.as_ref().expect("stats session not open");
        let counter = |k: &str| dump.counters.get(k).copied().unwrap_or(0);
        assert_eq!(counter("sim.repairs"), 2, "each blink installs one repair");
        assert_eq!(
            counter("sim.failbacks"),
            2,
            "hysteresis bounds flapping to one fail-back per episode"
        );
    }

    #[test]
    fn tile_death_is_diagnosed_not_survived() {
        use glocks_sim_base::fault::{HardFault, HardFaultTarget};
        use glocks_sim_base::FaultPlan;
        let cfg = CmpConfig::paper_baseline().with_cores(4);
        let mapping = LockMapping::uniform(LockAlgorithm::Tatas, 1);
        let mut plan = FaultPlan::seeded(3);
        plan.hard.push(HardFault::permanent(1_000, HardFaultTarget::Tile { core: 2 }));
        let opts = SimulationOptions {
            fault_plan: Some(plan),
            watchdog_cycles: 50_000,
            ..Default::default()
        };
        let sim = Simulation::new(&cfg, &mapping, mini_workloads(&cfg, 50), &[], opts);
        let err = match sim.run() {
            Ok(_) => panic!("a dead tile must wedge the run"),
            Err(e) => e,
        };
        assert_eq!(err.kind(), "no-forward-progress");
        // The snapshot names the frozen core.
        let snap = err.snapshot();
        assert!(snap.cores.iter().any(|c| c.id == CoreId(2)
            && c.activity != glocks_cpu::CoreActivity::Finished));
    }

    #[test]
    fn checker_is_silent_on_healthy_runs() {
        let cfg = CmpConfig::paper_baseline().with_cores(8);
        let mapping = LockMapping::uniform(LockAlgorithm::Mcs, 1);
        let opts = SimulationOptions {
            checker: Some(CheckerConfig { every: 64, fairness_window: 100_000 }),
            ..Default::default()
        };
        let sim = Simulation::new(&cfg, &mapping, mini_workloads(&cfg, 4), &[], opts);
        let (report, _) = sim.run().expect("checker must not trip on a clean run");
        assert_eq!(report.acquires[0], 32);
    }

    #[test]
    #[should_panic(expected = "fault rates exceed 100%")]
    fn invalid_fault_plan_is_rejected_at_construction() {
        use glocks_sim_base::{FaultPlan, FaultRates};
        let cfg = CmpConfig::paper_baseline().with_cores(4);
        let mapping = LockMapping::uniform(LockAlgorithm::Tatas, 1);
        let mut plan = FaultPlan::seeded(1);
        plan.noc = FaultRates { drop_ppm: 900_000, delay_ppm: 200_000, ..Default::default() };
        plan.noc.max_delay = 4;
        let opts = SimulationOptions { fault_plan: Some(plan), ..Default::default() };
        let _ = Simulation::new(&cfg, &mapping, mini_workloads(&cfg, 1), &[], opts);
    }

    #[test]
    #[should_panic(expected = "only 2 provided")]
    fn too_many_glocks_rejected() {
        let cfg = CmpConfig::paper_baseline().with_cores(4);
        let mapping = LockMapping::uniform(LockAlgorithm::Glock, 3);
        let _ = Simulation::new(
            &cfg,
            &mapping,
            mini_workloads(&cfg, 1),
            &[],
            SimulationOptions::default(),
        );
    }
}
