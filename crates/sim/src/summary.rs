//! Human-readable rendering of a [`SimReport`] — the "stats dump" a
//! simulator prints at the end of a run.

use crate::report::SimReport;
use glocks_sim_base::table::{pct, stacked_bar};
use std::fmt::Write as _;

/// Render the full end-of-run summary.
pub fn render(report: &SimReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "=== simulation summary ===");
    let _ = writeln!(out, "parallel phase: {} cycles", report.cycles);
    let f = report.avg_fractions();
    let _ = writeln!(
        out,
        "time breakdown: busy {} | memory {} | lock {} | barrier {}",
        pct(f[0]),
        pct(f[1]),
        pct(f[2]),
        pct(f[3])
    );
    let _ = writeln!(
        out,
        "                [{}]",
        stacked_bar(&f, &['B', 'M', 'L', 'R'], 48)
    );
    let _ = writeln!(out, "instructions:   {}", report.instructions());
    let t = &report.traffic;
    let _ = writeln!(
        out,
        "NoC traffic:    {} bytes ({} coherence / {} request / {} reply), {} messages",
        t.total_bytes(),
        t.coherence_bytes,
        t.request_bytes,
        t.reply_bytes,
        t.total_messages
    );
    let e = &report.energy;
    let _ = writeln!(
        out,
        "energy:         {:.3e} pJ (core {:.0}% | L1 {:.0}% | L2+dir {:.0}% | mem {:.0}% | NoC {:.0}% | GLock {:.1}% | leak {:.0}%)",
        e.total_pj(),
        100.0 * e.core_pj / e.total_pj(),
        100.0 * e.l1_pj / e.total_pj(),
        100.0 * e.l2_dir_pj / e.total_pj(),
        100.0 * e.mem_pj / e.total_pj(),
        100.0 * e.noc_pj / e.total_pj(),
        100.0 * e.glock_pj / e.total_pj(),
        100.0 * e.leak_pj / e.total_pj(),
    );
    let _ = writeln!(out, "ED2P:           {:.3e} pJ*cy^2", report.ed2p);
    for (i, (&acq, &wait)) in report.acquires.iter().zip(&report.mean_wait).enumerate() {
        if acq > 0 {
            let _ = writeln!(
                out,
                "lock {i}: {acq} acquires, mean wait {wait:.0} cycles"
            );
        }
    }
    for (i, g) in report.glocks.iter().enumerate() {
        let _ = writeln!(
            out,
            "glock {i}: {} grants, {} G-line signals",
            g.grants, g.signals
        );
    }
    if let Some(p) = &report.pool {
        let _ = writeln!(
            out,
            "glock pool: {} hw acquires, {} spills, {} binds, {} unbinds",
            p.hw_acquires, p.spills, p.binds, p.unbinds
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::LockMapping;
    use crate::runner::{Simulation, SimulationOptions};
    use glocks_cpu::{Action, Workload};
    use glocks_locks::LockAlgorithm;
    use glocks_mem::MemOp;
    use glocks_sim_base::{Addr, CmpConfig, LockId};

    struct Tiny {
        left: u64,
        phase: u8,
    }

    impl Workload for Tiny {
        fn next(&mut self, _last: u64) -> Action {
            match self.phase {
                0 => {
                    if self.left == 0 {
                        return Action::Done;
                    }
                    self.phase = 1;
                    Action::Acquire(LockId(0))
                }
                1 => {
                    self.phase = 2;
                    Action::Mem(MemOp::Store(Addr(0x200_0000), self.left))
                }
                _ => {
                    self.left -= 1;
                    self.phase = 0;
                    Action::Release(LockId(0))
                }
            }
        }
    }

    #[test]
    fn summary_contains_all_sections() {
        let cfg = CmpConfig::paper_baseline().with_cores(4);
        let mapping = LockMapping::uniform(LockAlgorithm::Glock, 1);
        let workloads = (0..4)
            .map(|_| Box::new(Tiny { left: 2, phase: 0 }) as Box<dyn Workload>)
            .collect();
        let sim = Simulation::new(&cfg, &mapping, workloads, &[], SimulationOptions::default());
        let (report, _) = sim.run().expect("simulation wedged");
        let s = render(&report);
        assert!(s.contains("parallel phase"));
        assert!(s.contains("time breakdown"));
        assert!(s.contains("NoC traffic"));
        assert!(s.contains("ED2P"));
        assert!(s.contains("lock 0: 8 acquires"));
        assert!(s.contains("glock 0: 8 grants"));
        assert!(!s.contains("glock pool"), "no pool in this run");
    }
}
