//! The assembled CMP simulator: cores + L1s + directory L2 + mesh NoC +
//! GLock G-line networks + energy accounting, driven cycle by cycle.
//!
//! [`Simulation`] is workload-agnostic: it takes one `Workload` per core,
//! a [`LockMapping`] deciding which algorithm backs each workload lock
//! (the paper's hybrid scheme maps the highly-contended locks to GLocks or
//! MCS and everything else to TATAS), an optional initial memory image, and
//! runs the parallel phase to completion, returning a [`SimReport`] with
//! every metric the paper's evaluation uses.

pub mod checker;
pub mod error;
pub mod mapping;
pub mod report;
pub mod runner;
pub mod snapshot;
pub mod summary;

pub use checker::{CheckerConfig, ProtocolChecker};
pub use error::{CoreDiag, DiagnosticSnapshot, GlockDiag, LockDiag, SimError};
pub use mapping::LockMapping;
pub use report::{SimReport, TrafficSnapshot};
pub use runner::{Simulation, SimulationOptions};
pub use snapshot::Snapshot;
