//! Structured failure reporting for wedged or misbehaving runs.
//!
//! Under fault injection a configuration can legitimately fail to finish
//! (e.g. a schedule that drops 100% of TOKEN signals). Instead of an
//! `assert!` that aborts the whole experiment sweep, the runner returns a
//! [`SimError`] carrying a [`DiagnosticSnapshot`]: what every core was
//! doing, who held which lock, and what the memory system had in flight at
//! the moment the watchdog fired. A sweep harness logs the error and moves
//! on to the next configuration.

use glocks::GlockStats;
use glocks_cpu::CoreActivity;
use glocks_mem::MemDiag;
use glocks_sim_base::{CoreId, Cycle, LockId, ThreadId};
use std::fmt;

/// One core's contribution to the wedge picture.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CoreDiag {
    pub id: CoreId,
    /// What the core was doing when the run was declared dead.
    pub activity: CoreActivity,
    /// Workload-level progress events it had made by then.
    pub progress_events: u64,
}

/// One workload lock's state from the [`glocks_cpu::LockTracker`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LockDiag {
    pub lock: LockId,
    /// Thread inside the critical section, if any.
    pub holder: Option<ThreadId>,
    /// Successful acquires so far.
    pub acquires: u64,
}

/// One hardware GLock network's state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GlockDiag {
    /// Index into the simulation's GLock networks.
    pub index: usize,
    /// Core whose leaf controller holds the token.
    pub holder: Option<CoreId>,
    /// Leaf controllers waiting for the token.
    pub waiting: usize,
    pub stats: GlockStats,
}

/// Everything the runner knows at the moment it gives up on a run.
#[derive(Clone, Debug)]
pub struct DiagnosticSnapshot {
    /// Cycle at which the run was declared dead.
    pub cycle: Cycle,
    pub cores: Vec<CoreDiag>,
    pub locks: Vec<LockDiag>,
    pub glocks: Vec<GlockDiag>,
    pub mem: MemDiag,
}

impl fmt::Display for DiagnosticSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "state at cycle {}:", self.cycle)?;
        let finished = self
            .cores
            .iter()
            .filter(|c| c.activity == CoreActivity::Finished)
            .count();
        writeln!(f, "  cores ({} of {} finished):", finished, self.cores.len())?;
        for c in &self.cores {
            if c.activity == CoreActivity::Finished {
                continue;
            }
            writeln!(
                f,
                "    core {}: {:?}, {} progress events",
                c.id, c.activity, c.progress_events
            )?;
        }
        for l in &self.locks {
            writeln!(
                f,
                "  lock {}: holder {}, {} acquires",
                l.lock,
                match l.holder {
                    Some(t) => format!("thread {t}"),
                    None => "none".into(),
                },
                l.acquires
            )?;
        }
        for g in &self.glocks {
            writeln!(
                f,
                "  glock net {}: token at {}, {} waiting, {} grants, {} signals \
                 ({} dropped, {} retransmits)",
                g.index,
                match g.holder {
                    Some(c) => format!("core {c}"),
                    None => "manager".into(),
                },
                g.waiting,
                g.stats.grants,
                g.stats.signals,
                g.stats.dropped,
                g.stats.retransmits
            )?;
        }
        write!(
            f,
            "  mem: {} noc in flight ({} queued, {} dropped), {} busy L1s, \
             {} busy dir lines, {} queued dir requests",
            self.mem.noc_in_flight,
            self.mem.noc_queued,
            self.mem.noc_dropped,
            self.mem.busy_l1s,
            self.mem.dir_busy_lines,
            self.mem.dir_queued_requests
        )
    }
}

/// Why a run did not produce a report.
#[derive(Clone, Debug)]
pub enum SimError {
    /// No core made workload-level progress for a full watchdog window.
    NoForwardProgress {
        /// The watchdog window that elapsed without progress.
        window: u64,
        snapshot: Box<DiagnosticSnapshot>,
    },
    /// The run passed `SimulationOptions::max_cycles`.
    MaxCyclesExceeded {
        limit: u64,
        snapshot: Box<DiagnosticSnapshot>,
    },
    /// The post-run drain never reached quiescence.
    DrainStalled {
        /// Drain cycles waited before giving up.
        waited: u64,
        snapshot: Box<DiagnosticSnapshot>,
    },
    /// All threads finished but lock state leaked (a held lock or a leaked
    /// dynamic GLock binding) — a protocol bug, not a liveness problem.
    ResidualLockState {
        detail: String,
        snapshot: Box<DiagnosticSnapshot>,
    },
    /// The runtime protocol checker caught a safety violation (mutual
    /// exclusion, token uniqueness, bounded waiting, or MESI consistency)
    /// while the run was still making progress.
    InvariantViolation {
        detail: String,
        snapshot: Box<DiagnosticSnapshot>,
    },
    /// The run exceeded its wall-clock budget
    /// (`SimulationOptions::wall_clock_limit_ms`). Unlike every other
    /// variant this one depends on the host machine, not the simulated
    /// one — the harness treats it as a *transient wedge* and retries.
    WallClockExceeded {
        limit_ms: u64,
        snapshot: Box<DiagnosticSnapshot>,
    },
    /// A periodic checkpoint could not be written (some component refused
    /// to serialize). The run itself was healthy when this fired.
    CheckpointFailed {
        detail: String,
        snapshot: Box<DiagnosticSnapshot>,
    },
}

impl SimError {
    /// The captured state, whatever the failure mode.
    pub fn snapshot(&self) -> &DiagnosticSnapshot {
        match self {
            SimError::NoForwardProgress { snapshot, .. }
            | SimError::MaxCyclesExceeded { snapshot, .. }
            | SimError::DrainStalled { snapshot, .. }
            | SimError::ResidualLockState { snapshot, .. }
            | SimError::InvariantViolation { snapshot, .. }
            | SimError::WallClockExceeded { snapshot, .. }
            | SimError::CheckpointFailed { snapshot, .. } => snapshot,
        }
    }

    /// Short machine-friendly tag for sweep logs.
    pub fn kind(&self) -> &'static str {
        match self {
            SimError::NoForwardProgress { .. } => "no-forward-progress",
            SimError::MaxCyclesExceeded { .. } => "max-cycles-exceeded",
            SimError::DrainStalled { .. } => "drain-stalled",
            SimError::ResidualLockState { .. } => "residual-lock-state",
            SimError::InvariantViolation { .. } => "invariant-violation",
            SimError::WallClockExceeded { .. } => "wall-clock-exceeded",
            SimError::CheckpointFailed { .. } => "checkpoint-failed",
        }
    }

    /// True if the failure depends on the host machine rather than the
    /// simulated one. A transient failure can succeed on retry (the sweep
    /// harness retries with backoff and flags the run flaky); every
    /// deterministic failure will recur exactly and is recorded once.
    pub fn is_transient(&self) -> bool {
        matches!(self, SimError::WallClockExceeded { .. })
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::NoForwardProgress { window, snapshot } => {
                writeln!(f, "no forward progress for {window} cycles")?;
                write!(f, "{snapshot}")
            }
            SimError::MaxCyclesExceeded { limit, snapshot } => {
                writeln!(f, "simulation exceeded {limit} cycles")?;
                write!(f, "{snapshot}")
            }
            SimError::DrainStalled { waited, snapshot } => {
                writeln!(f, "memory system failed to drain after {waited} cycles")?;
                write!(f, "{snapshot}")
            }
            SimError::ResidualLockState { detail, snapshot } => {
                writeln!(f, "residual lock state after completion: {detail}")?;
                write!(f, "{snapshot}")
            }
            SimError::InvariantViolation { detail, snapshot } => {
                writeln!(f, "protocol invariant violated: {detail}")?;
                write!(f, "{snapshot}")
            }
            SimError::WallClockExceeded { limit_ms, snapshot } => {
                writeln!(f, "run exceeded its wall-clock budget of {limit_ms} ms")?;
                write!(f, "{snapshot}")
            }
            SimError::CheckpointFailed { detail, snapshot } => {
                writeln!(f, "periodic checkpoint failed: {detail}")?;
                write!(f, "{snapshot}")
            }
        }
    }
}

impl std::error::Error for SimError {}
