//! Versioned whole-machine snapshots.
//!
//! A [`Snapshot`] is the byte image produced by
//! [`crate::Simulation::checkpoint`]: a fixed header (magic, codec
//! version, configuration fingerprint, cycle) followed by the dynamic
//! state of every subsystem in a fixed walk order. Structure is **not**
//! stored — [`crate::Simulation::resume`] rebuilds the machine from the
//! same specification and then loads this state into it, gem5-style. The
//! fingerprint in the header is the guard that the specification really is
//! the same: it digests the architectural config, the lock mapping, the
//! simulation options and the codec version, so a snapshot taken on one
//! machine shape refuses to load into another with
//! [`SnapError::FingerprintMismatch`] instead of silently decoding
//! garbage.
//!
//! Snapshots are taken at cycle boundaries only, which is why no scratch
//! buffer, half-delivered message or mid-tick cursor ever needs encoding:
//! everything transient within a cycle has settled when the boundary is
//! reached.

use glocks_sim_base::snap::{SnapError, SnapReader, SNAP_MAGIC, SNAP_VERSION};
use glocks_sim_base::Cycle;

/// Byte offset where the body (post-header) starts: magic + version +
/// fingerprint + cycle.
pub const HEADER_BYTES: usize = 4 + 4 + 8 + 8;

/// A validated checkpoint image.
///
/// Invariant: `bytes` always starts with a well-formed header whose magic
/// and version match this build, so the accessors never fail.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Snapshot {
    bytes: Vec<u8>,
}

impl Snapshot {
    /// Adopt a buffer produced by [`crate::Simulation::checkpoint`] in
    /// this process (header already well-formed by construction).
    pub(crate) fn from_trusted(bytes: Vec<u8>) -> Self {
        debug_assert!(Self::parse_header(&bytes).is_ok());
        Snapshot { bytes }
    }

    /// Validate and adopt bytes read back from disk. Only the header is
    /// checked here — fingerprint and body verification happen when the
    /// snapshot is loaded into a reconstructed machine.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Self, SnapError> {
        Self::parse_header(&bytes)?;
        Ok(Snapshot { bytes })
    }

    fn parse_header(bytes: &[u8]) -> Result<(u64, Cycle), SnapError> {
        let mut r = SnapReader::new(bytes);
        let magic = r.u32()?;
        if magic != SNAP_MAGIC {
            return Err(SnapError::BadMagic { found: magic });
        }
        let version = r.u32()?;
        if version != SNAP_VERSION {
            return Err(SnapError::VersionMismatch { found: version, expected: SNAP_VERSION });
        }
        let fingerprint = r.u64()?;
        let cycle = r.u64()?;
        Ok((fingerprint, cycle))
    }

    /// The configuration fingerprint this snapshot was taken under.
    pub fn fingerprint(&self) -> u64 {
        Self::parse_header(&self.bytes).expect("validated at construction").0
    }

    /// The cycle boundary the machine state sits at.
    pub fn cycle(&self) -> Cycle {
        Self::parse_header(&self.bytes).expect("validated at construction").1
    }

    /// The full image, header included (what goes to disk).
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    pub fn is_empty(&self) -> bool {
        false // a valid snapshot always carries at least its header
    }

    /// Reader positioned at the body (past the header).
    pub(crate) fn body(&self) -> SnapReader<'_> {
        SnapReader::new(&self.bytes[HEADER_BYTES..])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glocks_sim_base::snap::SnapWriter;

    fn header(magic: u32, version: u32, fp: u64, cycle: u64) -> Vec<u8> {
        let mut w = SnapWriter::new();
        w.u32(magic);
        w.u32(version);
        w.u64(fp);
        w.u64(cycle);
        w.into_bytes()
    }

    #[test]
    fn header_round_trips() {
        let s = Snapshot::from_bytes(header(SNAP_MAGIC, SNAP_VERSION, 0xABCD, 42)).unwrap();
        assert_eq!(s.fingerprint(), 0xABCD);
        assert_eq!(s.cycle(), 42);
        assert_eq!(s.len(), HEADER_BYTES);
        assert!(!s.is_empty());
    }

    #[test]
    fn bad_magic_rejected() {
        let e = Snapshot::from_bytes(header(0xDEAD_BEEF, SNAP_VERSION, 0, 0)).unwrap_err();
        assert_eq!(e, SnapError::BadMagic { found: 0xDEAD_BEEF });
    }

    #[test]
    fn future_version_rejected() {
        let e = Snapshot::from_bytes(header(SNAP_MAGIC, SNAP_VERSION + 1, 0, 0)).unwrap_err();
        assert!(matches!(e, SnapError::VersionMismatch { .. }));
    }

    #[test]
    fn truncated_header_rejected() {
        let mut b = header(SNAP_MAGIC, SNAP_VERSION, 0, 0);
        b.truncate(10);
        assert!(matches!(
            Snapshot::from_bytes(b),
            Err(SnapError::Truncated { .. })
        ));
    }
}
