//! Runtime protocol invariant checker.
//!
//! A sampling checker that rides along every run it is enabled for —
//! notably the fault sweeps, where an injected failure could silently
//! corrupt the protocol instead of wedging visibly. Like the stats
//! subsystem it is **zero-cost when off**: `SimulationOptions::checker` is
//! `None` by default and the runner's cycle loop then never touches it, so
//! fault-free paper runs stay bit-identical.
//!
//! Five invariant families are validated every [`CheckerConfig::every`]
//! cycles:
//!
//! 1. **Mutual exclusion per lock** — the [`glocks_cpu::LockTracker`]'s
//!    holder/requester picture must be self-consistent (the tracker's own
//!    asserts catch a double-grant immediately; this scan catches backends
//!    that desynchronize the bookkeeping).
//! 2. **At most one token per G-line network** — across epochs, exactly
//!    one automaton of a healthy network may hold the token, and the root
//!    must hold it when nobody else does
//!    ([`glocks::GlockNetwork::token_invariant_violation`]). Networks
//!    compromised by a hard fault are exempt from the liveness half (a
//!    dead component may have taken the token with it) but never from
//!    the at-most-one half.
//! 3. **Bounded waiting** — round-robin arbitration means a requester is
//!    served within one round. If the oldest outstanding request has waited
//!    more than [`CheckerConfig::fairness_window`] cycles *while more
//!    grants than a full round flowed past it*, fairness is broken. (A
//!    global stall trips the watchdog instead, with its own diagnosis.)
//! 4. **Directory/L1 MESI compatibility** —
//!    [`glocks_mem::MemorySystem::find_invariant_violation`].
//! 5. **Fail-back safety** — on a repaired-but-untrusted network, the
//!    only legitimate grant holder is the fail-back probe's core (no
//!    production acquire may sneak onto unproven hardware); while a
//!    fail-back drain is in progress no hardware grant may exist at all;
//!    and once the hardware path is trusted again no software tenure may
//!    still be in flight (no double-path ownership).
//!
//! A violation surfaces as [`crate::SimError::InvariantViolation`] carrying
//! the usual diagnostic snapshot, so a sweep harness logs it like any other
//! structured failure and moves on.

use glocks::GlockNetwork;
use glocks_cpu::LockTracker;
use glocks_locks::failover::{FailbackCtl, FailbackMode};
use glocks_mem::MemorySystem;
use glocks_sim_base::snap::{SnapError, SnapReader, SnapWriter};
use glocks_sim_base::{Cycle, LockId, ThreadId};
use glocks_stats as gstats;
use std::rc::Rc;

/// Sampling cadence and fairness bound of the runtime checker.
#[derive(Clone, Copy, Debug)]
pub struct CheckerConfig {
    /// Run the checks every `every` cycles (must be ≥ 1).
    pub every: u64,
    /// Bounded-waiting horizon: a requester stuck this long while a full
    /// round of grants passed it by is a fairness violation.
    pub fairness_window: u64,
}

impl Default for CheckerConfig {
    fn default() -> Self {
        // The MESI scan walks every resident line, so the default cadence
        // is coarse enough not to dominate runtime.
        CheckerConfig { every: 1024, fairness_window: 1_000_000 }
    }
}

/// Per-lock memory of the bounded-waiting analysis: the oldest request we
/// have been watching and how many grants the lock had served when we
/// first saw it.
#[derive(Clone, Copy)]
struct WaitWatch {
    tid: ThreadId,
    since: Cycle,
    acquires_then: u64,
}

/// The runtime checker's state across a run.
pub struct ProtocolChecker {
    cfg: CheckerConfig,
    watches: Vec<Option<WaitWatch>>,
    n_cores: u64,
    checks_run: u64,
}

impl ProtocolChecker {
    pub fn new(cfg: CheckerConfig, n_locks: usize, n_cores: usize) -> Self {
        assert!(cfg.every >= 1, "checker cadence must be at least 1 cycle");
        ProtocolChecker {
            cfg,
            watches: vec![None; n_locks],
            n_cores: n_cores as u64,
            checks_run: 0,
        }
    }

    /// Is a check due this cycle?
    pub fn due(&self, now: Cycle) -> bool {
        now.is_multiple_of(self.cfg.every)
    }

    /// Run every invariant family; returns a description of the first
    /// violation found. `ctls` holds the fail-back controllers
    /// index-aligned with `nets` (`None` — or a short/empty slice — for
    /// networks without a failover backend).
    pub fn check(
        &mut self,
        now: Cycle,
        tracker: &LockTracker,
        mem: &MemorySystem,
        nets: &[GlockNetwork],
        ctls: &[Option<Rc<FailbackCtl>>],
    ) -> Option<String> {
        self.checks_run += 1;
        if let Some(v) = tracker.find_violation() {
            return Some(format!("mutual exclusion: {v}"));
        }
        for (k, net) in nets.iter().enumerate() {
            if let Some(v) = net.token_invariant_violation() {
                return Some(format!("glock net {k} token invariant: {v}"));
            }
            let ctl = ctls.get(k).and_then(|c| c.as_ref());
            let health = net.health();
            if !health.is_dead() && !health.is_trusted() {
                // Repaired but untrusted: the only legitimate grant is the
                // fail-back probe's round-trip.
                if let Some(h) = net.regs().hw_holder() {
                    if ctl.and_then(|c| c.probing_core()) != Some(h) {
                        return Some(format!(
                            "glock net {k}: grant to core {h} from an untrusted network"
                        ));
                    }
                }
            }
            if let Some(ctl) = ctl {
                match ctl.mode() {
                    FailbackMode::Draining => {
                        if let Some(h) = net.regs().hw_holder() {
                            return Some(format!(
                                "glock net {k}: hardware holder {h} during fail-back drain"
                            ));
                        }
                    }
                    FailbackMode::Hardware => {
                        let inflight = ctl.sw_inflight();
                        if inflight > 0 {
                            return Some(format!(
                                "glock net {k}: {inflight} software tenure(s) in flight \
                                 while the hardware path is trusted (double-path ownership)"
                            ));
                        }
                    }
                    FailbackMode::SoftwareWait | FailbackMode::Probing => {}
                }
            }
        }
        if let Some(v) = self.check_bounded_waiting(now, tracker) {
            return Some(v);
        }
        if let Some(v) = mem.find_invariant_violation() {
            return Some(format!("MESI: {v}"));
        }
        None
    }

    fn check_bounded_waiting(&mut self, now: Cycle, tracker: &LockTracker) -> Option<String> {
        for (i, watch) in self.watches.iter_mut().enumerate() {
            let lock = LockId(i as u16);
            let Some((tid, since)) = tracker.oldest_request(lock) else {
                *watch = None;
                continue;
            };
            let acquires = tracker.acquires(lock);
            match watch {
                Some(w) if w.tid == tid && w.since == since => {
                    // Round-robin bound: within one full round (one grant
                    // per core) every raised request must have been served.
                    let flowed = acquires - w.acquires_then;
                    if now.saturating_sub(since) > self.cfg.fairness_window
                        && flowed > self.n_cores
                    {
                        return Some(format!(
                            "bounded waiting: thread {tid} has waited {} cycles on lock {i} \
                             while {flowed} grants flowed past it",
                            now - since
                        ));
                    }
                }
                _ => *watch = Some(WaitWatch { tid, since, acquires_then: acquires }),
            }
        }
        None
    }

    /// Serialize the armed bounded-waiting watches and the check counter.
    /// Without them a resumed run would re-arm every watch one sampling
    /// period later than the uninterrupted run and publish a different
    /// `checker.checks_run`.
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.mark("checker");
        w.seq(&self.watches, |w, watch| match watch {
            None => w.bool(false),
            Some(wt) => {
                w.bool(true);
                w.u16(wt.tid.0);
                w.u64(wt.since);
                w.u64(wt.acquires_then);
            }
        });
        w.u64(self.checks_run);
    }

    /// Restore state saved by [`ProtocolChecker::save_state`].
    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        r.expect("checker")?;
        let watches = r.seq(|r| {
            Ok(if r.bool()? {
                Some(WaitWatch {
                    tid: ThreadId(r.u16()?),
                    since: r.u64()?,
                    acquires_then: r.u64()?,
                })
            } else {
                None
            })
        })?;
        if watches.len() != self.watches.len() {
            return Err(SnapError::Corrupt { what: "checker lock count" });
        }
        self.watches = watches;
        self.checks_run = r.u64()?;
        Ok(())
    }

    /// Publish the checker's own counters (only registered when the
    /// checker ran, so fault-free stats dumps keep their schema).
    pub fn publish_stats(&self) {
        if !gstats::is_enabled() {
            return;
        }
        gstats::set(gstats::counter("checker.checks_run"), self.checks_run);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cadence_and_counters() {
        let mut ck = ProtocolChecker::new(
            CheckerConfig { every: 8, fairness_window: 100 },
            1,
            4,
        );
        assert!(ck.due(0) && ck.due(8) && !ck.due(9));
        let tracker = LockTracker::new(1, 4);
        let mem = MemorySystem::new(&glocks_sim_base::CmpConfig::paper_baseline());
        assert_eq!(ck.check(0, &tracker, &mem, &[], &[]), None);
        assert_eq!(ck.checks_run, 1);
    }

    #[test]
    fn bounded_waiting_trips_on_starvation_with_progress() {
        let mut ck = ProtocolChecker::new(
            CheckerConfig { every: 1, fairness_window: 50 },
            1,
            2,
        );
        let mut tracker = LockTracker::new(1, 2);
        let mem = MemorySystem::new(&glocks_sim_base::CmpConfig::paper_baseline());
        // Thread 0 requests at cycle 0 and is never served...
        tracker.on_acquire_start(LockId(0), ThreadId(0), 0);
        assert_eq!(ck.check(1, &tracker, &mem, &[], &[]), None, "first sight arms the watch");
        // ...while thread 1 grabs the lock over and over (3 > n_cores).
        for _ in 0..3 {
            tracker.on_acquire_start(LockId(0), ThreadId(1), 2);
            tracker.on_acquired(LockId(0), ThreadId(1), 3);
            tracker.on_release_start(LockId(0), ThreadId(1), 4);
        }
        assert_eq!(ck.check(10, &tracker, &mem, &[], &[]), None, "within the window");
        let v = ck.check(100, &tracker, &mem, &[], &[]).expect("starvation must trip");
        assert!(v.contains("bounded waiting"), "{v}");
    }

    /// The fail-back invariants: a non-probe grant on an untrusted
    /// network, a hardware holder during the drain, and software tenures
    /// surviving into the trusted state must all trip the checker.
    #[test]
    fn failback_invariants_guard_untrusted_grants_and_double_path() {
        use glocks::Topology;
        use glocks_locks::failover::FailoverGlockBackend;
        use glocks_sim_base::{Addr, Mesh2D};

        let mut net = GlockNetwork::new(&Topology::flat(Mesh2D::new(2, 2)), 1);
        let backend = FailoverGlockBackend::new(net.regs(), net.health(), Addr(0x1000), 4);
        let ctl = backend.failback_ctl();
        let regs = net.regs();
        // Kill while idle, detect via a raw request, then repair: the
        // network ends repaired-but-untrusted.
        net.schedule_line_kill(10);
        for t in 0..20 {
            net.tick(t);
        }
        regs.set_req(0);
        let mut now = 20;
        while !net.health().is_dead() {
            net.tick(now);
            now += 1;
            assert!(now < 1_000_000, "death verdict never reached");
        }
        net.schedule_repair(now);
        net.tick(now);
        assert!(!net.health().is_dead() && !net.health().is_trusted());

        let tracker = LockTracker::new(1, 4);
        let mem = MemorySystem::new(&glocks_sim_base::CmpConfig::paper_baseline());
        let mut ck = ProtocolChecker::new(CheckerConfig::default(), 1, 4);

        // A rogue (non-probe) request sneaks onto the untrusted hardware
        // and is granted: invariant 5 must trip.
        regs.set_req(1);
        for _ in 0..20 {
            now += 1;
            net.tick(now);
        }
        assert_eq!(regs.hw_holder(), Some(1));
        let nets = [net];
        let ctls = [Some(Rc::clone(&ctl))];
        let v = ck
            .check(now, &tracker, &mem, &nets, &ctls)
            .expect("a non-probe grant on an untrusted network must trip");
        assert!(v.contains("untrusted"), "{v}");

        // Same grant, but owned by the fail-back probe: legitimate. Forge
        // the probe state through the controller's own snapshot codec
        // (mode=Probing, stage=awaiting grant on core 1).
        let mut w = SnapWriter::new();
        w.u8(2); // Probing
        w.u32(0);
        w.u64(now);
        w.u8(1); // probe stage: awaiting grant
        w.usize(1); // probe core 1
        w.u64(now);
        w.bool(true);
        w.u64(now);
        w.u64(0); // sw_inflight
        w.u64(0); // failbacks
        let bytes = w.into_bytes();
        ctl.load_state(&mut SnapReader::new(&bytes)).unwrap();
        assert_eq!(
            ck.check(now, &tracker, &mem, &nets, &ctls),
            None,
            "the probe's own round-trip is the one legitimate untrusted grant"
        );

        // Draining with a hardware holder: no grant may exist mid-drain.
        // (Promote the net to trusted first so the drain invariant — which
        // holds regardless of health — is the one that trips.)
        nets[0].health().mark_trusted();
        let mut w = SnapWriter::new();
        w.u8(3); // Draining
        w.u32(0);
        w.u64(now);
        w.u8(0);
        w.usize(0);
        w.u64(0);
        w.bool(true);
        w.u64(0);
        w.u64(0);
        w.u64(0);
        let bytes = w.into_bytes();
        ctl.load_state(&mut SnapReader::new(&bytes)).unwrap();
        let v = ck
            .check(now, &tracker, &mem, &nets, &ctls)
            .expect("a hardware holder during the drain must trip");
        assert!(v.contains("drain"), "{v}");

        // Trusted hardware with software tenures still in flight.
        let mut w = SnapWriter::new();
        w.u8(0); // Hardware
        w.u32(0);
        w.u64(0);
        w.u8(0);
        w.usize(0);
        w.u64(0);
        w.bool(true);
        w.u64(0);
        w.u64(1); // sw_inflight: one stranded software tenure
        w.u64(0);
        let bytes = w.into_bytes();
        ctl.load_state(&mut SnapReader::new(&bytes)).unwrap();
        let v = ck
            .check(now, &tracker, &mem, &nets, &ctls)
            .expect("software tenures on a trusted hardware path must trip");
        assert!(v.contains("double-path"), "{v}");
    }

    #[test]
    fn served_requests_reset_the_watch() {
        let mut ck = ProtocolChecker::new(
            CheckerConfig { every: 1, fairness_window: 10 },
            1,
            2,
        );
        let mut tracker = LockTracker::new(1, 2);
        let mem = MemorySystem::new(&glocks_sim_base::CmpConfig::paper_baseline());
        tracker.on_acquire_start(LockId(0), ThreadId(0), 0);
        assert_eq!(ck.check(1, &tracker, &mem, &[], &[]), None);
        tracker.on_acquired(LockId(0), ThreadId(0), 5);
        tracker.on_release_start(LockId(0), ThreadId(0), 6);
        assert_eq!(ck.check(1000, &tracker, &mem, &[], &[]), None, "no outstanding request");
    }
}
