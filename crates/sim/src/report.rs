//! The metrics a simulation run produces — everything the paper's
//! evaluation section reports.

use glocks::{GlockStats, PoolStats};
use glocks_cpu::Breakdown;
use glocks_energy::EnergyReport;
use glocks_noc::{TrafficClass, TrafficStats};
use glocks_sim_base::Cycle;

/// Network-traffic totals, frozen at the end of a run (Figure 9's bars).
#[derive(Clone, Copy, Debug, Default)]
pub struct TrafficSnapshot {
    pub request_bytes: u64,
    pub reply_bytes: u64,
    pub coherence_bytes: u64,
    pub total_messages: u64,
    pub total_hops: u64,
}

impl TrafficSnapshot {
    pub fn from_stats(s: &TrafficStats) -> Self {
        TrafficSnapshot {
            request_bytes: s.bytes(TrafficClass::Request),
            reply_bytes: s.bytes(TrafficClass::Reply),
            coherence_bytes: s.bytes(TrafficClass::Coherence),
            total_messages: s.total_messages(),
            total_hops: s.total_hops(),
        }
    }

    pub fn total_bytes(&self) -> u64 {
        self.request_bytes + self.reply_bytes + self.coherence_bytes
    }
}

/// Everything measured over one parallel-phase run.
#[derive(Clone, Debug)]
pub struct SimReport {
    /// Parallel-phase execution time in cycles (the last thread's finish).
    pub cycles: Cycle,
    /// Per-thread cycle attribution (Busy / Memory / Lock / Barrier).
    pub breakdowns: Vec<Breakdown>,
    pub traffic: TrafficSnapshot,
    pub energy: EnergyReport,
    /// Figure 10's metric: total energy × cycles².
    pub ed2p: f64,
    /// Eq. 3: `lcr[lock][grac]`, summing to 1 over all locks and grACs.
    pub lcr: Vec<Vec<f64>>,
    /// Total acquires per lock.
    pub acquires: Vec<u64>,
    /// Mean acquire→grant wait per lock, in cycles.
    pub mean_wait: Vec<f64>,
    /// Per hardware-lock G-line network statistics.
    pub glocks: Vec<GlockStats>,
    /// Cycle at which each thread finished (multiprogramming reports).
    pub finished_at: Vec<Cycle>,
    /// Binding-table statistics when dynamic GLock sharing was active.
    pub pool: Option<PoolStats>,
    /// Full typed-stats snapshot, present when a stats session was active
    /// during the run (`glocks_stats::enable`). `None` costs nothing.
    pub stats: Option<glocks_stats::StatsDump>,
}

impl SimReport {
    /// Fleet-average fractions `[busy, memory, lock, barrier]` — the
    /// composition of Figure 8's stacked bars.
    pub fn avg_fractions(&self) -> [f64; 4] {
        let mut total = Breakdown::default();
        for b in &self.breakdowns {
            total.merge(b);
        }
        total.fractions()
    }

    /// Total instructions executed by all threads.
    pub fn instructions(&self) -> u64 {
        self.breakdowns.iter().map(|b| b.instructions).sum()
    }

    /// The fraction of aggregate thread time spent in lock operations.
    pub fn lock_fraction(&self) -> f64 {
        self.avg_fractions()[2]
    }

    /// Aggregate contention rate for grACs above a threshold (the paper
    /// quotes e.g. "contention close to 80% for grACs higher than 20").
    pub fn aggregate_lcr_above(&self, grac_threshold: usize) -> f64 {
        self.lcr
            .iter()
            .map(|per_lock| {
                per_lock
                    .iter()
                    .enumerate()
                    .filter(|(g, _)| *g > grac_threshold)
                    .map(|(_, v)| v)
                    .sum::<f64>()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traffic_snapshot_totals() {
        let mut s = TrafficStats::default();
        s.on_link_traversal(TrafficClass::Request, 8);
        s.on_link_traversal(TrafficClass::Reply, 72);
        s.on_link_traversal(TrafficClass::Coherence, 8);
        let snap = TrafficSnapshot::from_stats(&s);
        assert_eq!(snap.total_bytes(), 88);
        assert_eq!(snap.total_hops, 3);
    }

    #[test]
    fn aggregate_lcr_filters_by_grac() {
        let report = SimReport {
            cycles: 100,
            breakdowns: vec![],
            traffic: TrafficSnapshot::default(),
            energy: Default::default(),
            ed2p: 0.0,
            lcr: vec![vec![0.0, 0.1, 0.2, 0.3, 0.4]],
            acquires: vec![1],
            mean_wait: vec![0.0],
            glocks: vec![],
            finished_at: vec![],
            pool: None,
            stats: None,
        };
        assert!((report.aggregate_lcr_above(2) - 0.7).abs() < 1e-12);
        assert!((report.aggregate_lcr_above(0) - 1.0).abs() < 1e-12);
    }
}
