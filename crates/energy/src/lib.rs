//! Event-based energy accounting for the simulated CMP.
//!
//! Sim-PowerCMP estimates power with Wattch/CACTI models for the cores and
//! caches, HotLeakage for leakage and Orion for the interconnect. We
//! reproduce the *structure* of that accounting — dynamic energy per
//! architectural event plus leakage per cycle, summed per component — with
//! constants chosen for plausible relative magnitudes in a ~45 nm design
//! (absolute calibration is out of scope; Figure 10 reports *normalized*
//! ED²P, which depends only on event-count and execution-time ratios).
//!
//! The G-line consumption model follows the paper's approach of extending
//! the simulator "with the consumption model of G-lines and controllers
//! employed in \[21\]": a small per-signal energy plus a tiny per-controller
//! static component.

use glocks_sim_base::stats::CounterSet;

/// Per-event energies in picojoules and per-cycle leakage terms.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EnergyModel {
    /// Dynamic energy per executed instruction.
    pub instr_pj: f64,
    /// Clock/pipeline overhead per live core-cycle (a core is live from
    /// simulation start until its thread finishes).
    pub core_cycle_pj: f64,
    /// Per L1 access (hits, fills, external probes).
    pub l1_access_pj: f64,
    /// Per L2 data-array access.
    pub l2_access_pj: f64,
    /// Per directory transaction.
    pub dir_txn_pj: f64,
    /// Per off-chip memory access.
    pub mem_access_pj: f64,
    /// Per packet-hop through a router (buffering + crossbar + arbitration).
    pub router_hop_pj: f64,
    /// Per byte crossing one link.
    pub link_byte_pj: f64,
    /// Per 1-bit G-line signal transmission.
    pub gline_signal_pj: f64,
    /// Static energy per GLock controller per cycle.
    pub glock_ctrl_cycle_pj: f64,
    /// Leakage per tile per cycle (core + caches + router share).
    pub tile_leak_pj: f64,
}

impl EnergyModel {
    /// The default model used by all experiments (documented in DESIGN.md).
    pub fn paper_baseline() -> Self {
        EnergyModel {
            instr_pj: 25.0,
            core_cycle_pj: 10.0,
            l1_access_pj: 20.0,
            l2_access_pj: 100.0,
            dir_txn_pj: 12.0,
            mem_access_pj: 2000.0,
            router_hop_pj: 6.0,
            link_byte_pj: 0.6,
            gline_signal_pj: 2.0,
            glock_ctrl_cycle_pj: 0.05,
            tile_leak_pj: 12.0,
        }
    }
}

/// Raw activity of one simulation run.
#[derive(Clone, Debug, Default)]
pub struct EnergyInputs {
    /// Parallel-phase length in cycles.
    pub cycles: u64,
    pub n_tiles: usize,
    /// Total instructions executed by all cores.
    pub instructions: u64,
    /// Sum over cores of live cycles (start → thread finish).
    pub live_core_cycles: u64,
    /// Aggregated memory-hierarchy counters (`l1_access`, `l2_access`,
    /// `dir_txn`, `mem_access`, ...).
    pub mem_counters: CounterSet,
    /// Total packet-hops through routers.
    pub noc_hops: u64,
    /// Total bytes × hops on links.
    pub noc_byte_hops: u64,
    /// Total G-line signal transmissions (all GLock networks).
    pub gline_signals: u64,
    /// Number of GLock controllers powered (all networks).
    pub glock_controllers: u64,
}

/// Energy broken down by component, in picojoules.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EnergyReport {
    pub core_pj: f64,
    pub l1_pj: f64,
    pub l2_dir_pj: f64,
    pub mem_pj: f64,
    pub noc_pj: f64,
    pub glock_pj: f64,
    pub leak_pj: f64,
}

impl EnergyReport {
    pub fn total_pj(&self) -> f64 {
        self.core_pj
            + self.l1_pj
            + self.l2_dir_pj
            + self.mem_pj
            + self.noc_pj
            + self.glock_pj
            + self.leak_pj
    }

    /// Energy-delay product (pJ·cycles).
    pub fn edp(&self, cycles: u64) -> f64 {
        self.total_pj() * cycles as f64
    }

    /// Energy-delay² product (pJ·cycles²) — Figure 10's metric.
    pub fn ed2p(&self, cycles: u64) -> f64 {
        self.total_pj() * (cycles as f64) * (cycles as f64)
    }
}

impl EnergyModel {
    /// Account a run's activity into per-component energy.
    pub fn account(&self, inp: &EnergyInputs) -> EnergyReport {
        let m = &inp.mem_counters;
        EnergyReport {
            core_pj: inp.instructions as f64 * self.instr_pj
                + inp.live_core_cycles as f64 * self.core_cycle_pj,
            l1_pj: m.get("l1_access") as f64 * self.l1_access_pj,
            l2_dir_pj: m.get("l2_access") as f64 * self.l2_access_pj
                + m.get("dir_txn") as f64 * self.dir_txn_pj,
            mem_pj: m.get("mem_access") as f64 * self.mem_access_pj,
            noc_pj: inp.noc_hops as f64 * self.router_hop_pj
                + inp.noc_byte_hops as f64 * self.link_byte_pj,
            glock_pj: inp.gline_signals as f64 * self.gline_signal_pj
                + inp.glock_controllers as f64 * inp.cycles as f64 * self.glock_ctrl_cycle_pj,
            leak_pj: inp.n_tiles as f64 * inp.cycles as f64 * self.tile_leak_pj,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs() -> EnergyInputs {
        let mut mem_counters = CounterSet::default();
        mem_counters.add("l1_access", 100);
        mem_counters.add("l2_access", 10);
        mem_counters.add("dir_txn", 10);
        mem_counters.add("mem_access", 2);
        EnergyInputs {
            cycles: 1000,
            n_tiles: 4,
            instructions: 500,
            live_core_cycles: 4000,
            mem_counters,
            noc_hops: 50,
            noc_byte_hops: 800,
            gline_signals: 12,
            glock_controllers: 10,
        }
    }

    #[test]
    fn totals_are_component_sums() {
        let r = EnergyModel::paper_baseline().account(&inputs());
        let sum = r.core_pj + r.l1_pj + r.l2_dir_pj + r.mem_pj + r.noc_pj + r.glock_pj + r.leak_pj;
        assert!((r.total_pj() - sum).abs() < 1e-9);
        assert!(r.total_pj() > 0.0);
    }

    #[test]
    fn component_arithmetic() {
        let m = EnergyModel::paper_baseline();
        let r = m.account(&inputs());
        assert_eq!(r.l1_pj, 100.0 * 20.0);
        assert_eq!(r.l2_dir_pj, 10.0 * 100.0 + 10.0 * 12.0);
        assert_eq!(r.mem_pj, 2.0 * 2000.0);
        assert_eq!(r.core_pj, 500.0 * 25.0 + 4000.0 * 10.0);
        assert_eq!(r.noc_pj, 50.0 * 6.0 + 800.0 * 0.6);
        assert_eq!(r.glock_pj, 12.0 * 2.0 + 10.0 * 1000.0 * 0.05);
        assert_eq!(r.leak_pj, 4.0 * 1000.0 * 12.0);
    }

    #[test]
    fn ed2p_scales_quadratically_with_delay() {
        let m = EnergyModel::paper_baseline();
        let r = m.account(&inputs());
        let e1 = r.ed2p(1000);
        let e2 = r.ed2p(2000);
        assert!((e2 / e1 - 4.0).abs() < 1e-9, "same energy, 2× delay ⇒ 4× ED²P");
        assert!((r.edp(1000) * 1000.0 - e1).abs() < 1e-6);
    }

    #[test]
    fn gline_energy_is_marginal() {
        // The paper's claim: the dedicated network has negligible impact on
        // energy. A full acquire/release (6 signals) must cost far less
        // than a single L2 access.
        let m = EnergyModel::paper_baseline();
        assert!(6.0 * m.gline_signal_pj < m.l2_access_pj / 5.0);
    }

    #[test]
    fn empty_inputs_give_zero_dynamic() {
        let m = EnergyModel::paper_baseline();
        let r = m.account(&EnergyInputs::default());
        assert_eq!(r.total_pj(), 0.0);
    }
}
