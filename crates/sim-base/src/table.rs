//! Plain-text table rendering for the experiment harness.
//!
//! The harness regenerates every table and figure of the paper as aligned
//! text tables (and optional CSV) so runs can be diffed and pasted into
//! EXPERIMENTS.md.

use std::fmt::Write as _;

/// A simple column-aligned text table with an optional title.
#[derive(Clone, Debug, Default)]
pub struct TextTable {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    pub fn new(title: impl Into<String>) -> Self {
        TextTable {
            title: title.into(),
            ..Default::default()
        }
    }

    pub fn header<I, S>(mut self, cols: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.header = cols.into_iter().map(Into::into).collect();
        self
    }

    pub fn row<I, S>(&mut self, cells: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert!(
            self.header.is_empty() || row.len() == self.header.len(),
            "row width {} != header width {}",
            row.len(),
            self.header.len()
        );
        self.rows.push(row);
    }

    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    fn widths(&self) -> Vec<usize> {
        let ncols = self
            .header
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut w = vec![0usize; ncols];
        for (i, h) in self.header.iter().enumerate() {
            w[i] = w[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                w[i] = w[i].max(c.chars().count());
            }
        }
        w
    }

    /// Render as an aligned plain-text table.
    pub fn render(&self) -> String {
        let w = self.widths();
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "== {} ==", self.title);
        }
        let fmt_row = |cells: &[String], w: &[usize]| {
            let mut line = String::new();
            for (i, width) in w.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                let _ = write!(line, "{cell:>width$}  ");
            }
            line.trim_end().to_string()
        };
        if !self.header.is_empty() {
            let h = fmt_row(&self.header, &w);
            let _ = writeln!(out, "{h}");
            let _ = writeln!(out, "{}", "-".repeat(h.chars().count()));
        }
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &w));
        }
        out
    }

    /// Render as CSV (RFC-4180-lite: quotes any cell containing a comma).
    pub fn to_csv(&self) -> String {
        let esc = |c: &str| {
            if c.contains(',') || c.contains('"') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_string()
            }
        };
        let mut out = String::new();
        if !self.header.is_empty() {
            let _ = writeln!(
                out,
                "{}",
                self.header.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }
}

/// Format a fraction as a percentage with one decimal, e.g. `0.423` → `42.3%`.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// A unicode bar of width proportional to `x` (clamped to `[0, max]`),
/// `width` characters at full scale — for figure-style textual bar charts.
pub fn bar(x: f64, max: f64, width: usize) -> String {
    if max <= 0.0 || width == 0 {
        return String::new();
    }
    let frac = (x / max).clamp(0.0, 1.0);
    let cells = frac * width as f64;
    let full = cells.floor() as usize;
    let rem = cells - full as f64;
    // eighth-block partial cell for finer resolution
    const PARTS: [char; 8] = [' ', '▏', '▎', '▍', '▌', '▋', '▊', '▉'];
    let mut s = "█".repeat(full);
    if full < width {
        let idx = (rem * 8.0).floor() as usize;
        if idx > 0 {
            s.push(PARTS[idx.min(7)]);
        }
    }
    s
}

/// A stacked bar over category fractions (must sum to ≤ 1), one glyph per
/// category, `width` characters at full scale — the shape of the paper's
/// stacked Figure 8 bars in text.
pub fn stacked_bar(fracs: &[f64], glyphs: &[char], width: usize) -> String {
    assert_eq!(fracs.len(), glyphs.len());
    let mut s = String::new();
    let mut used = 0usize;
    for (i, &f) in fracs.iter().enumerate() {
        let n = (f * width as f64).round() as usize;
        let n = n.min(width - used);
        for _ in 0..n {
            s.push(glyphs[i]);
        }
        used += n;
    }
    s
}

/// Format a normalized value with two decimals, e.g. `0.58`.
pub fn norm(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new("demo").header(["name", "value"]);
        t.row(["a", "1"]);
        t.row(["long-name", "22"]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("long-name"));
        // both data rows align the value column to the same offset
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5); // title, header, rule, 2 rows
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = TextTable::new("x").header(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = TextTable::new("").header(["k", "v"]);
        t.row(["a,b", "say \"hi\""]);
        let csv = t.to_csv();
        assert_eq!(csv, "k,v\n\"a,b\",\"say \"\"hi\"\"\"\n");
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.423), "42.3%");
        assert_eq!(norm(0.576), "0.58");
    }

    #[test]
    fn bars_scale_and_clamp() {
        assert_eq!(bar(1.0, 1.0, 4), "████");
        assert_eq!(bar(0.5, 1.0, 4), "██");
        assert_eq!(bar(2.0, 1.0, 4), "████", "clamped at max");
        assert_eq!(bar(0.0, 1.0, 4), "");
        assert_eq!(bar(1.0, 0.0, 4), "", "degenerate max");
        // partial cells use eighth blocks
        let b = bar(0.56, 1.0, 4);
        assert!(b.chars().count() == 3 && b.starts_with("██"), "{b:?}");
    }

    #[test]
    fn stacked_bars_partition_width() {
        let s = stacked_bar(&[0.5, 0.25, 0.25], &['B', 'M', 'L'], 8);
        assert_eq!(s, "BBBBMMLL");
        let s = stacked_bar(&[1.0, 0.5], &['a', 'b'], 4);
        assert_eq!(s, "aaaa", "overflow is clipped");
    }
}
