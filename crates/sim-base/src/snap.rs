//! Versioned binary codec for deterministic checkpoint/restore.
//!
//! The simulator snapshots **dynamic state only** (gem5-style): structure —
//! cores, caches, networks, the Rc wiring between them — is rebuilt by
//! re-running the constructors with the same specification, and the dynamic
//! state recorded here is then loaded into the reconstructed machine. A
//! [`Fingerprint`] over the canonical encoding of that specification guards
//! against loading a snapshot into a different machine.
//!
//! The format is deliberately hand-rolled (the workspace carries no
//! external dependencies) and append-only little-endian:
//!
//! * integers are fixed-width little-endian;
//! * `f64` round-trips through [`f64::to_bits`] so restored state is
//!   bit-identical (NaN payloads and `-0.0` included);
//! * every component section starts with a [`SnapWriter::mark`] — a 32-bit
//!   FNV hash of a label — so a misaligned reader fails loudly at the next
//!   section boundary instead of silently decoding garbage.

use std::fmt;

/// First bytes of every snapshot ("GLSN").
pub const SNAP_MAGIC: u32 = 0x474C_534E;
/// Bump on any incompatible change to the encoded layout.
/// v2: per-core `Breakdown` gained an `idle` field (open-loop arrivals).
pub const SNAP_VERSION: u32 = 2;

/// Why a snapshot could not be written or read back.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapError {
    /// The reader ran off the end of the buffer.
    Truncated { at: usize },
    /// The buffer does not start with [`SNAP_MAGIC`].
    BadMagic { found: u32 },
    /// The snapshot was written by an incompatible codec version.
    VersionMismatch { found: u32, expected: u32 },
    /// The snapshot belongs to a different machine specification.
    FingerprintMismatch { found: u64, expected: u64 },
    /// A section marker did not match: writer and reader disagree on
    /// layout (usually a save/load pair out of sync).
    MarkMismatch { label: &'static str },
    /// An enum tag was out of range for `what`.
    BadTag { what: &'static str, tag: u64 },
    /// A component cannot be snapshotted (e.g. an exotic workload without
    /// save support).
    Unsupported { what: &'static str },
    /// Structurally invalid content (negative lengths, shape mismatches).
    Corrupt { what: &'static str },
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::Truncated { at } => write!(f, "snapshot truncated at byte {at}"),
            SnapError::BadMagic { found } => {
                write!(f, "not a snapshot (magic {found:#010x}, expected {SNAP_MAGIC:#010x})")
            }
            SnapError::VersionMismatch { found, expected } => {
                write!(f, "snapshot version {found} incompatible with codec version {expected}")
            }
            SnapError::FingerprintMismatch { found, expected } => write!(
                f,
                "snapshot fingerprint {found:#018x} does not match this \
                 configuration's fingerprint {expected:#018x}"
            ),
            SnapError::MarkMismatch { label } => {
                write!(f, "section marker mismatch at {label:?}")
            }
            SnapError::BadTag { what, tag } => write!(f, "invalid tag {tag} for {what}"),
            SnapError::Unsupported { what } => write!(f, "{what} does not support snapshotting"),
            SnapError::Corrupt { what } => write!(f, "corrupt snapshot section: {what}"),
        }
    }
}

impl std::error::Error for SnapError {}

/// FNV-1a over a label, used for section markers.
fn fnv32(label: &str) -> u32 {
    let mut h: u32 = 0x811C_9DC5;
    for b in label.bytes() {
        h ^= u32::from(b);
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// Append-only snapshot encoder.
#[derive(Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    pub fn new() -> Self {
        SnapWriter::default()
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Begin a named section. The matching [`SnapReader::expect`] verifies
    /// writer and reader walk the same layout.
    pub fn mark(&mut self, label: &str) {
        self.u32(fnv32(label));
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Bit-exact f64 (NaN payloads and signed zeros survive).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    pub fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            None => self.bool(false),
            Some(x) => {
                self.bool(true);
                self.u64(x);
            }
        }
    }

    pub fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    pub fn bytes(&mut self, b: &[u8]) {
        self.usize(b.len());
        self.buf.extend_from_slice(b);
    }

    pub fn u64_slice(&mut self, xs: &[u64]) {
        self.usize(xs.len());
        for &x in xs {
            self.u64(x);
        }
    }

    /// Length-prefixed sequence via a per-item closure.
    pub fn seq<T>(&mut self, xs: &[T], mut f: impl FnMut(&mut Self, &T)) {
        self.usize(xs.len());
        for x in xs {
            f(self, x);
        }
    }
}

/// Snapshot decoder over a byte buffer.
pub struct SnapReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        SnapReader { buf, pos: 0 }
    }

    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        if self.remaining() < n {
            return Err(SnapError::Truncated { at: self.pos });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Verify the next section marker; see [`SnapWriter::mark`].
    pub fn expect(&mut self, label: &'static str) -> Result<(), SnapError> {
        if self.u32()? != fnv32(label) {
            return Err(SnapError::MarkMismatch { label });
        }
        Ok(())
    }

    pub fn u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take(1)?[0])
    }

    pub fn bool(&mut self) -> Result<bool, SnapError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(SnapError::BadTag { what: "bool", tag: u64::from(tag) }),
        }
    }

    pub fn u16(&mut self) -> Result<u16, SnapError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    pub fn u32(&mut self) -> Result<u32, SnapError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn u64(&mut self) -> Result<u64, SnapError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn i64(&mut self) -> Result<i64, SnapError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn usize(&mut self) -> Result<usize, SnapError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| SnapError::Corrupt { what: "length" })
    }

    pub fn f64(&mut self) -> Result<f64, SnapError> {
        Ok(f64::from_bits(self.u64()?))
    }

    pub fn opt_u64(&mut self) -> Result<Option<u64>, SnapError> {
        Ok(if self.bool()? { Some(self.u64()?) } else { None })
    }

    pub fn str(&mut self) -> Result<String, SnapError> {
        let n = self.usize()?;
        let b = self.take(n)?;
        String::from_utf8(b.to_vec()).map_err(|_| SnapError::Corrupt { what: "utf-8 string" })
    }

    pub fn bytes(&mut self) -> Result<Vec<u8>, SnapError> {
        let n = self.usize()?;
        Ok(self.take(n)?.to_vec())
    }

    pub fn u64_vec(&mut self) -> Result<Vec<u64>, SnapError> {
        let n = self.usize()?;
        (0..n).map(|_| self.u64()).collect()
    }

    /// Length-prefixed sequence via a per-item closure.
    pub fn seq<T>(
        &mut self,
        mut f: impl FnMut(&mut Self) -> Result<T, SnapError>,
    ) -> Result<Vec<T>, SnapError> {
        let n = self.usize()?;
        (0..n).map(|_| f(self)).collect()
    }

    /// Fixed-length sequence (the count comes from the reconstructed
    /// structure, not the buffer): call `f` exactly `n` times.
    pub fn each(
        &mut self,
        n: usize,
        mut f: impl FnMut(&mut Self, usize) -> Result<(), SnapError>,
    ) -> Result<(), SnapError> {
        for i in 0..n {
            f(self, i)?;
        }
        Ok(())
    }
}

/// FNV-1a 64-bit accumulator for configuration fingerprints. Feed it the
/// canonical encoding of everything that shapes the machine; the digest
/// gates [`SnapError::FingerprintMismatch`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Fingerprint(u64);

impl Default for Fingerprint {
    fn default() -> Self {
        Fingerprint(0xCBF2_9CE4_8422_2325)
    }
}

impl Fingerprint {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn mix_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    pub fn mix_u64(&mut self, v: u64) {
        self.mix_bytes(&v.to_le_bytes());
    }

    pub fn mix_str(&mut self, s: &str) {
        self.mix_u64(s.len() as u64);
        self.mix_bytes(s.as_bytes());
    }

    pub fn value(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        let mut w = SnapWriter::new();
        w.mark("test");
        w.u8(7);
        w.bool(true);
        w.u16(65_000);
        w.u32(123_456);
        w.u64(u64::MAX - 3);
        w.i64(-42);
        w.usize(99);
        w.f64(-0.0);
        w.f64(f64::NAN);
        w.opt_u64(None);
        w.opt_u64(Some(5));
        w.str("héllo");
        w.u64_slice(&[1, 2, 3]);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        r.expect("test").unwrap();
        assert_eq!(r.u8().unwrap(), 7);
        assert!(r.bool().unwrap());
        assert_eq!(r.u16().unwrap(), 65_000);
        assert_eq!(r.u32().unwrap(), 123_456);
        assert_eq!(r.u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.i64().unwrap(), -42);
        assert_eq!(r.usize().unwrap(), 99);
        let z = r.f64().unwrap();
        assert_eq!(z.to_bits(), (-0.0f64).to_bits(), "signed zero preserved");
        assert!(r.f64().unwrap().is_nan());
        assert_eq!(r.opt_u64().unwrap(), None);
        assert_eq!(r.opt_u64().unwrap(), Some(5));
        assert_eq!(r.str().unwrap(), "héllo");
        assert_eq!(r.u64_vec().unwrap(), vec![1, 2, 3]);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn truncation_is_detected() {
        let mut w = SnapWriter::new();
        w.u64(1);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes[..4]);
        assert!(matches!(r.u64(), Err(SnapError::Truncated { .. })));
    }

    #[test]
    fn marks_catch_misalignment() {
        let mut w = SnapWriter::new();
        w.mark("cores");
        w.u64(3);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert_eq!(r.expect("noc"), Err(SnapError::MarkMismatch { label: "noc" }));
    }

    #[test]
    fn bad_bool_is_a_tag_error() {
        let mut r = SnapReader::new(&[9]);
        assert!(matches!(r.bool(), Err(SnapError::BadTag { what: "bool", .. })));
    }

    #[test]
    fn seq_round_trips() {
        let mut w = SnapWriter::new();
        w.seq(&[10u64, 20, 30], |w, &x| w.u64(x));
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert_eq!(r.seq(|r| r.u64()).unwrap(), vec![10, 20, 30]);
    }

    #[test]
    fn fingerprint_is_order_sensitive() {
        let mut a = Fingerprint::new();
        a.mix_u64(1);
        a.mix_u64(2);
        let mut b = Fingerprint::new();
        b.mix_u64(2);
        b.mix_u64(1);
        assert_ne!(a.value(), b.value());
        let mut c = Fingerprint::new();
        c.mix_u64(1);
        c.mix_u64(2);
        assert_eq!(a.value(), c.value());
    }

    #[test]
    fn string_fingerprints_are_prefix_safe() {
        let mut a = Fingerprint::new();
        a.mix_str("ab");
        a.mix_str("c");
        let mut b = Fingerprint::new();
        b.mix_str("a");
        b.mix_str("bc");
        assert_ne!(a.value(), b.value());
    }
}
