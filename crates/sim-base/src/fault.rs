//! Deterministic fault injection.
//!
//! The paper's protocol assumes perfectly reliable G-lines and a never-stuck
//! memory system. To exercise the hardened protocol (epoch-tagged tokens,
//! retransmission) and the runner watchdog, a [`FaultPlan`] describes a
//! reproducible schedule of injected faults: dropped / delayed / duplicated
//! G-line signals, dropped / delayed NoC packets, and stalled directory
//! responses.
//!
//! Determinism is the whole point: the decision for event `i` at a given
//! site is a pure function of `(plan seed, site, stream, i)` — a SplitMix64
//! hash — so a fault schedule replays bit-identically regardless of how the
//! simulator interleaves its component ticks, and a failing configuration
//! can be handed around as `(seed, rates)`.

use crate::rng::SplitMix64;

/// Event-granular fault probabilities for one injection site, expressed in
/// parts-per-million so plans are exact integers (no float drift between
/// platforms).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultRates {
    /// Probability (ppm) that an event is silently dropped.
    pub drop_ppm: u32,
    /// Probability (ppm) that an event is delayed by `1..=max_delay` extra
    /// cycles.
    pub delay_ppm: u32,
    /// Upper bound on the extra delay; ignored when `delay_ppm == 0`.
    pub max_delay: u64,
    /// Probability (ppm) that an event is delivered twice.
    pub duplicate_ppm: u32,
}

impl FaultRates {
    /// No faults at all.
    pub const NONE: FaultRates = FaultRates {
        drop_ppm: 0,
        delay_ppm: 0,
        max_delay: 0,
        duplicate_ppm: 0,
    };

    /// Drop-only rates.
    pub fn drops(drop_ppm: u32) -> Self {
        FaultRates { drop_ppm, ..Self::NONE }
    }

    /// Delay-only rates.
    pub fn delays(delay_ppm: u32, max_delay: u64) -> Self {
        FaultRates { delay_ppm, max_delay, ..Self::NONE }
    }

    /// Duplicate-only rates.
    pub fn duplicates(duplicate_ppm: u32) -> Self {
        FaultRates { duplicate_ppm, ..Self::NONE }
    }

    pub fn is_active(&self) -> bool {
        self.drop_ppm > 0 || self.delay_ppm > 0 || self.duplicate_ppm > 0
    }

    /// Structural validation: the three ppm fields must sum to at most
    /// 1_000_000 (probabilities, not weights), and delay faults need a
    /// nonempty delay range to draw from.
    pub fn validate(&self, site: &'static str) -> Result<(), FaultPlanError> {
        let total = u64::from(self.drop_ppm)
            + u64::from(self.delay_ppm)
            + u64::from(self.duplicate_ppm);
        if total > 1_000_000 {
            return Err(FaultPlanError::RateOverflow { site, total_ppm: total });
        }
        if self.delay_ppm > 0 && self.max_delay == 0 {
            return Err(FaultPlanError::DelayWithoutBound { site });
        }
        Ok(())
    }
}

/// A structurally invalid [`FaultPlan`], caught at construction instead of
/// silently misbehaving mid-run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultPlanError {
    /// `drop_ppm + delay_ppm + duplicate_ppm` exceed 1_000_000 at `site`.
    RateOverflow { site: &'static str, total_ppm: u64 },
    /// `delay_ppm > 0` with `max_delay == 0`: the delay draw would be empty.
    DelayWithoutBound { site: &'static str },
    /// A hard fault's `repair_at` does not lie strictly after its kill
    /// cycle — the fault window would be empty or inverted.
    InvertedRepairWindow { at_cycle: u64, repair_at: u64 },
    /// `repair_at` on a target that has no repair semantics (routers and
    /// tiles lose state that no lock-layer repair can restore).
    UnrepairableTarget { target: HardFaultTarget },
}

impl std::fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultPlanError::RateOverflow { site, total_ppm } => {
                write!(f, "{site} fault rates exceed 100% ({total_ppm} ppm)")
            }
            FaultPlanError::DelayWithoutBound { site } => {
                write!(f, "{site} delay faults need max_delay >= 1")
            }
            FaultPlanError::InvertedRepairWindow { at_cycle, repair_at } => {
                write!(
                    f,
                    "repair_at {repair_at} must lie strictly after the kill cycle {at_cycle}"
                )
            }
            FaultPlanError::UnrepairableTarget { target } => {
                write!(f, "{target:?} cannot carry a repair_at (not a repairable target)")
            }
        }
    }
}

impl std::error::Error for FaultPlanError {}

/// Where faults are injected. Each site draws from an independent hash
/// stream, so enabling one site never perturbs another's schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultSite {
    /// 1-bit G-line signal transmissions (REQ / TOKEN / REL).
    Gline,
    /// NoC packet injections.
    Noc,
    /// Directory response scheduling (delay only — a directory cannot
    /// "drop" its own transaction, it can only stall it).
    Dir,
}

impl FaultSite {
    fn tag(self) -> u64 {
        match self {
            FaultSite::Gline => 0x47_4C49_4E45,
            FaultSite::Noc => 0x004E_4F43,
            FaultSite::Dir => 0x0044_4952,
        }
    }
}

/// The verdict for one event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultDecision {
    /// Deliver normally.
    Deliver,
    /// Lose the event.
    Drop,
    /// Deliver `extra` cycles late.
    Delay(u64),
    /// Deliver twice.
    Duplicate,
}

/// A component that dies *permanently* at a scheduled cycle. Unlike the
/// transient [`FaultRates`] (which the hardened protocol rides out), a hard
/// fault is unsurvivable at the component level — recovery, where it exists,
/// is architectural: detection plus failover to a software lock path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HardFaultTarget {
    /// The shared G-line segments of lock network `net`: every signal sent
    /// at or after the death cycle is lost and in-flight signals never
    /// arrive. Kills the whole network's ability to communicate.
    GlockLine { net: usize },
    /// One lock manager (`Sx` secondary or `R` root) of network `net`, by
    /// arbiter node index. A dead manager ignores all signals and emits
    /// none, severing its whole subtree.
    GlockManager { net: usize, node: usize },
    /// Core `core`'s local controller (`Cx`) on network `net`. The core's
    /// register pair goes unanswered forever on the hardware path.
    GlockLeaf { net: usize, core: usize },
    /// The mesh router at `tile`: queued packets are dropped and nothing is
    /// ever routed through it again.
    NocRouter { tile: usize },
    /// A whole tile: its router dies and the core at `core` halts mid-run.
    Tile { core: usize },
}

/// One component failure at a deterministic cycle. Permanent by default;
/// an **intermittent** fault additionally carries a `repair_at` cycle at
/// which replacement hardware arrives: the dead component is reset to a
/// clean boot image and comes back *untrusted* — the fail-back machinery
/// (`locks::failover`) must probe it healthy before the hardware path is
/// re-armed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HardFault {
    /// Cycle at which the component dies.
    pub at_cycle: u64,
    pub target: HardFaultTarget,
    /// Earliest cycle at which the component may be repaired (`None` =
    /// permanent). The repair actually fires once the death has been
    /// *detected* and the component has drained, so `repair_at` is a lower
    /// bound, not an exact instant. Must lie strictly after `at_cycle`,
    /// and only GLock-layer targets (`GlockLine`/`GlockManager`/
    /// `GlockLeaf`) are repairable — a router or tile loses architectural
    /// state no lock-layer reset can restore.
    pub repair_at: Option<u64>,
}

impl HardFault {
    /// A permanent fault (never repaired).
    pub fn permanent(at_cycle: u64, target: HardFaultTarget) -> Self {
        HardFault { at_cycle, target, repair_at: None }
    }

    /// An intermittent fault: killed at `at_cycle`, repairable from
    /// `repair_at` on.
    pub fn intermittent(at_cycle: u64, repair_at: u64, target: HardFaultTarget) -> Self {
        HardFault { at_cycle, target, repair_at: Some(repair_at) }
    }

    /// Structural validation of the repair window (see [`HardFault::repair_at`]).
    pub fn validate(&self) -> Result<(), FaultPlanError> {
        if let Some(repair_at) = self.repair_at {
            if repair_at <= self.at_cycle {
                return Err(FaultPlanError::InvertedRepairWindow {
                    at_cycle: self.at_cycle,
                    repair_at,
                });
            }
            match self.target {
                HardFaultTarget::GlockLine { .. }
                | HardFaultTarget::GlockManager { .. }
                | HardFaultTarget::GlockLeaf { .. } => {}
                HardFaultTarget::NocRouter { .. } | HardFaultTarget::Tile { .. } => {
                    return Err(FaultPlanError::UnrepairableTarget { target: self.target });
                }
            }
        }
        Ok(())
    }
}

/// A complete, seeded fault schedule for one simulation run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    /// Master seed; every injection site derives its stream from it.
    pub seed: u64,
    /// G-line signal faults (applied per lock network).
    pub gline: FaultRates,
    /// NoC packet faults.
    pub noc: FaultRates,
    /// Directory response stalls (only `delay_ppm`/`max_delay` are used).
    pub dir: FaultRates,
    /// Permanent component deaths, each at a fixed cycle.
    pub hard: Vec<HardFault>,
}

impl FaultPlan {
    /// An all-quiet plan with the given seed; set rates on the fields.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan { seed, ..Self::default() }
    }

    pub fn is_active(&self) -> bool {
        self.gline.is_active()
            || self.noc.is_active()
            || self.dir.is_active()
            || !self.hard.is_empty()
    }

    /// Whether the plan schedules any permanent component death.
    pub fn has_hard_faults(&self) -> bool {
        !self.hard.is_empty()
    }

    /// Validate every rate site. Call this before handing the plan to a
    /// simulation; [`FaultInjector::new`] still panics on an invalid plan
    /// as a second line of defense.
    pub fn validate(&self) -> Result<(), FaultPlanError> {
        self.gline.validate("gline")?;
        self.noc.validate("noc")?;
        self.dir.validate("dir")?;
        for hf in &self.hard {
            hf.validate()?;
        }
        Ok(())
    }

    /// Whether the plan schedules any *intermittent* hard fault (one with
    /// a repair window).
    pub fn has_repairs(&self) -> bool {
        self.hard.iter().any(|hf| hf.repair_at.is_some())
    }

    /// Schedule a permanent G-line death for every one of `n_nets` lock
    /// networks at a seed-derived cycle in `[earliest, latest]`. The kill
    /// cycle is a pure function of `(seed, net)`, so a chaos schedule is
    /// reproducible from the plan seed alone.
    pub fn kill_all_glock_networks(&mut self, n_nets: usize, earliest: u64, latest: u64) {
        assert!(latest >= earliest, "empty kill window");
        let span = latest - earliest + 1;
        for net in 0..n_nets {
            let mut rng = SplitMix64::new(
                self.seed
                    ^ 0x4841_5244_4641_4C54
                    ^ (net as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            );
            self.hard.push(HardFault {
                at_cycle: earliest + rng.next_below(span),
                target: HardFaultTarget::GlockLine { net },
                repair_at: None,
            });
        }
    }

    /// Like [`Self::kill_all_glock_networks`], but intermittent: each
    /// network becomes repairable `repair_delay` cycles after its
    /// seed-derived kill cycle. Same RNG derivation, so the kill schedule
    /// is identical to the permanent variant under the same seed.
    pub fn blink_all_glock_networks(
        &mut self,
        n_nets: usize,
        earliest: u64,
        latest: u64,
        repair_delay: u64,
    ) {
        assert!(repair_delay > 0, "repair must come strictly after the kill");
        let before = self.hard.len();
        self.kill_all_glock_networks(n_nets, earliest, latest);
        for hf in &mut self.hard[before..] {
            hf.repair_at = Some(hf.at_cycle + repair_delay);
        }
    }

    /// Build the injector for one component instance. `stream`
    /// distinguishes same-site instances (lock index, directory tile, ...).
    pub fn injector(&self, site: FaultSite, stream: u64) -> FaultInjector {
        let rates = match site {
            FaultSite::Gline => self.gline,
            FaultSite::Noc => self.noc,
            FaultSite::Dir => self.dir,
        };
        FaultInjector::new(self.seed, site, stream, rates)
    }
}

/// Running totals of injected faults (reported in diagnostics).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Events the injector ruled on.
    pub decided: u64,
    pub dropped: u64,
    pub delayed: u64,
    pub duplicated: u64,
}

impl FaultStats {
    pub fn injected(&self) -> u64 {
        self.dropped + self.delayed + self.duplicated
    }
}

/// The per-component decision maker. Holds only a monotone event counter —
/// each verdict is re-derived from `(seed, site, stream, index)`, so
/// cloning or re-creating an injector at the same index replays the exact
/// schedule.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    seed: u64,
    site: FaultSite,
    stream: u64,
    rates: FaultRates,
    next_event: u64,
    stats: FaultStats,
}

impl FaultInjector {
    pub fn new(seed: u64, site: FaultSite, stream: u64, rates: FaultRates) -> Self {
        let name = match site {
            FaultSite::Gline => "gline",
            FaultSite::Noc => "noc",
            FaultSite::Dir => "dir",
        };
        if let Err(e) = rates.validate(name) {
            panic!("{e}");
        }
        FaultInjector { seed, site, stream, rates, next_event: 0, stats: FaultStats::default() }
    }

    /// An injector that always delivers (handy as a no-op default).
    pub fn inactive() -> Self {
        FaultInjector::new(0, FaultSite::Gline, 0, FaultRates::NONE)
    }

    pub fn is_active(&self) -> bool {
        self.rates.is_active()
    }

    pub fn rates(&self) -> FaultRates {
        self.rates
    }

    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// Checkpoint the injector's dynamic state. Verdicts are pure
    /// functions of `(seed, site, stream, index)`, so the monotone event
    /// counter plus the running totals are the whole state.
    pub fn save_state(&self, w: &mut crate::snap::SnapWriter) {
        w.mark("fault-injector");
        w.u64(self.next_event);
        w.u64(self.stats.decided);
        w.u64(self.stats.dropped);
        w.u64(self.stats.delayed);
        w.u64(self.stats.duplicated);
    }

    /// Restore state saved by [`Self::save_state`] into an injector
    /// reconstructed from the same plan.
    pub fn load_state(
        &mut self,
        r: &mut crate::snap::SnapReader<'_>,
    ) -> Result<(), crate::snap::SnapError> {
        r.expect("fault-injector")?;
        self.next_event = r.u64()?;
        self.stats.decided = r.u64()?;
        self.stats.dropped = r.u64()?;
        self.stats.delayed = r.u64()?;
        self.stats.duplicated = r.u64()?;
        Ok(())
    }

    /// Rule on the next event at this site.
    pub fn decide(&mut self) -> FaultDecision {
        let idx = self.next_event;
        self.next_event += 1;
        if !self.rates.is_active() {
            return FaultDecision::Deliver;
        }
        self.stats.decided += 1;
        // Independent stream per (seed, site, stream); one SplitMix64 step
        // per event keeps the draw stateless in everything but the index.
        let mut rng = SplitMix64::new(
            self.seed
                ^ self.site.tag().rotate_left(17)
                ^ self.stream.wrapping_mul(0xD605_0B66_4B8B_6E85)
                ^ idx.wrapping_mul(0x2545_F491_4F6C_DD1D),
        );
        let p = rng.next_below(1_000_000) as u32;
        let drop_end = self.rates.drop_ppm;
        let dup_end = drop_end + self.rates.duplicate_ppm;
        let delay_end = dup_end + self.rates.delay_ppm;
        if p < drop_end {
            self.stats.dropped += 1;
            FaultDecision::Drop
        } else if p < dup_end {
            self.stats.duplicated += 1;
            FaultDecision::Duplicate
        } else if p < delay_end {
            self.stats.delayed += 1;
            FaultDecision::Delay(1 + rng.next_below(self.rates.max_delay))
        } else {
            FaultDecision::Deliver
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(drop: u32, dup: u32, delay: u32) -> FaultPlan {
        let mut p = FaultPlan::seeded(42);
        p.gline = FaultRates { drop_ppm: drop, duplicate_ppm: dup, delay_ppm: delay, max_delay: 8 };
        p
    }

    #[test]
    fn schedules_are_deterministic_and_stream_independent() {
        let p = plan(100_000, 50_000, 50_000);
        let mut a = p.injector(FaultSite::Gline, 3);
        let mut b = p.injector(FaultSite::Gline, 3);
        let mut other = p.injector(FaultSite::Gline, 4);
        let seq_a: Vec<_> = (0..500).map(|_| a.decide()).collect();
        let seq_b: Vec<_> = (0..500).map(|_| b.decide()).collect();
        assert_eq!(seq_a, seq_b, "same (seed, site, stream) must replay");
        let seq_o: Vec<_> = (0..500).map(|_| other.decide()).collect();
        assert_ne!(seq_a, seq_o, "streams must be independent");
    }

    #[test]
    fn rates_are_roughly_honored() {
        let p = plan(200_000, 0, 0); // 20% drop
        let mut inj = p.injector(FaultSite::Gline, 0);
        let n = 20_000;
        let dropped = (0..n).filter(|_| inj.decide() == FaultDecision::Drop).count();
        let frac = dropped as f64 / n as f64;
        assert!((0.17..0.23).contains(&frac), "drop fraction {frac} far from 20%");
        assert_eq!(inj.stats().dropped, dropped as u64);
    }

    #[test]
    fn inactive_injector_always_delivers() {
        let mut inj = FaultInjector::inactive();
        assert!(!inj.is_active());
        for _ in 0..100 {
            assert_eq!(inj.decide(), FaultDecision::Deliver);
        }
        assert_eq!(inj.stats(), FaultStats::default());
    }

    #[test]
    fn delays_are_bounded() {
        let p = plan(0, 0, 1_000_000); // always delay
        let mut inj = p.injector(FaultSite::Gline, 0);
        for _ in 0..1000 {
            match inj.decide() {
                FaultDecision::Delay(d) => assert!((1..=8).contains(&d)),
                other => panic!("expected delay, got {other:?}"),
            }
        }
    }

    #[test]
    #[should_panic(expected = "fault rates exceed 100%")]
    fn overfull_rates_are_rejected() {
        let p = plan(900_000, 200_000, 0);
        let _ = p.injector(FaultSite::Gline, 0);
    }

    #[test]
    fn full_drop_is_expressible() {
        let p = plan(1_000_000, 0, 0);
        let mut inj = p.injector(FaultSite::Gline, 0);
        for _ in 0..100 {
            assert_eq!(inj.decide(), FaultDecision::Drop);
        }
    }

    #[test]
    fn plan_validation_reports_structured_errors() {
        let ok = plan(100_000, 0, 0);
        assert_eq!(ok.validate(), Ok(()));
        let over = plan(900_000, 200_000, 0);
        assert_eq!(
            over.validate(),
            Err(FaultPlanError::RateOverflow { site: "gline", total_ppm: 1_100_000 })
        );
        assert!(over.validate().unwrap_err().to_string().contains("fault rates exceed 100%"));
        let mut unbounded = FaultPlan::seeded(1);
        unbounded.noc = FaultRates { delay_ppm: 10, max_delay: 0, ..FaultRates::NONE };
        assert_eq!(
            unbounded.validate(),
            Err(FaultPlanError::DelayWithoutBound { site: "noc" })
        );
        assert!(unbounded.validate().unwrap_err().to_string().contains("max_delay >= 1"));
    }

    #[test]
    fn repair_windows_are_validated() {
        let mut p = FaultPlan::seeded(3);
        p.hard.push(HardFault::intermittent(1_000, 2_000, HardFaultTarget::GlockLine { net: 0 }));
        assert_eq!(p.validate(), Ok(()));
        assert!(p.has_repairs());

        let mut inverted = FaultPlan::seeded(3);
        inverted
            .hard
            .push(HardFault::intermittent(2_000, 2_000, HardFaultTarget::GlockLine { net: 0 }));
        assert_eq!(
            inverted.validate(),
            Err(FaultPlanError::InvertedRepairWindow { at_cycle: 2_000, repair_at: 2_000 })
        );
        assert!(inverted.validate().unwrap_err().to_string().contains("strictly after"));

        let mut tile = FaultPlan::seeded(3);
        tile.hard.push(HardFault::intermittent(100, 200, HardFaultTarget::Tile { core: 1 }));
        assert_eq!(
            tile.validate(),
            Err(FaultPlanError::UnrepairableTarget {
                target: HardFaultTarget::Tile { core: 1 }
            })
        );

        let mut permanent = FaultPlan::seeded(3);
        permanent.hard.push(HardFault::permanent(100, HardFaultTarget::NocRouter { tile: 2 }));
        assert_eq!(permanent.validate(), Ok(()));
        assert!(!permanent.has_repairs());
    }

    #[test]
    fn blink_schedule_matches_kill_schedule_with_repairs() {
        let mut killed = FaultPlan::seeded(9);
        killed.kill_all_glock_networks(3, 1_000, 5_000);
        let mut blinked = FaultPlan::seeded(9);
        blinked.blink_all_glock_networks(3, 1_000, 5_000, 2_500);
        assert_eq!(blinked.validate(), Ok(()));
        for (k, b) in killed.hard.iter().zip(&blinked.hard) {
            assert_eq!(k.at_cycle, b.at_cycle, "same seed, same kill cycle");
            assert_eq!(b.repair_at, Some(b.at_cycle + 2_500));
        }
    }

    #[test]
    fn hard_fault_schedule_is_seed_deterministic() {
        let mut a = FaultPlan::seeded(7);
        a.kill_all_glock_networks(4, 1_000, 9_000);
        let mut b = FaultPlan::seeded(7);
        b.kill_all_glock_networks(4, 1_000, 9_000);
        assert_eq!(a.hard, b.hard, "same seed must replay the kill schedule");
        assert_eq!(a.hard.len(), 4);
        assert!(a.is_active() && a.has_hard_faults());
        for (k, hf) in a.hard.iter().enumerate() {
            assert!((1_000..=9_000).contains(&hf.at_cycle));
            assert_eq!(hf.target, HardFaultTarget::GlockLine { net: k });
        }
        let mut c = FaultPlan::seeded(8);
        c.kill_all_glock_networks(4, 1_000, 9_000);
        assert_ne!(a.hard, c.hard, "different seeds pick different cycles");
    }
}
