//! Strongly-typed identifiers for the simulated machine.
//!
//! Every index that crosses a module boundary gets its own newtype so that a
//! core id cannot silently be used where a tile id was meant. All ids are
//! `Copy` and order like their underlying integers.

use std::fmt;

/// A simulated clock cycle count (the simulator is single-clock-domain).
pub type Cycle = u64;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $inner:ty) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub $inner);

        impl $name {
            /// The raw index as a `usize`, for vector indexing.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl From<usize> for $name {
            #[inline]
            fn from(v: usize) -> Self {
                $name(v as $inner)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}", self.0)
            }
        }
    };
}

id_type!(
    /// A processor core. In this reproduction there is one core per tile and
    /// one thread per core, but the types stay distinct.
    CoreId,
    u16
);
id_type!(
    /// A tile of the tiled CMP (core + L1 + L2 slice + router).
    TileId,
    u16
);
id_type!(
    /// A software thread of the workload under simulation.
    ThreadId,
    u16
);
id_type!(
    /// A lock named by the workload. Whether it is backed by a software
    /// algorithm or by a hardware GLock is decided by the lock mapping.
    LockId,
    u16
);

/// A byte address in the simulated flat physical address space.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(pub u64);

/// A cache-line address: `Addr >> log2(line_size)`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(pub u64);

impl Addr {
    /// The cache line containing this address.
    #[inline]
    pub fn line(self, line_bytes: u64) -> LineAddr {
        debug_assert!(line_bytes.is_power_of_two());
        LineAddr(self.0 / line_bytes)
    }

    /// The address of the 8-byte word containing this address (the
    /// functional store is word-granular).
    #[inline]
    pub fn word(self) -> Addr {
        Addr(self.0 & !7)
    }
}

impl LineAddr {
    /// First byte address of the line.
    #[inline]
    pub fn base(self, line_bytes: u64) -> Addr {
        Addr(self.0 * line_bytes)
    }
}

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Addr({:#x})", self.0)
    }
}

impl fmt::Debug for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Line({:#x})", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_math_round_trips() {
        let a = Addr(0x1234);
        let l = a.line(64);
        assert_eq!(l, LineAddr(0x1234 / 64));
        assert!(l.base(64).0 <= a.0);
        assert!(a.0 < l.base(64).0 + 64);
    }

    #[test]
    fn word_alignment() {
        assert_eq!(Addr(15).word(), Addr(8));
        assert_eq!(Addr(8).word(), Addr(8));
        assert_eq!(Addr(7).word(), Addr(0));
    }

    #[test]
    fn ids_are_ordered_and_indexable() {
        let a = CoreId(3);
        let b = CoreId(7);
        assert!(a < b);
        assert_eq!(b.index(), 7);
        assert_eq!(CoreId::from(9usize), CoreId(9));
    }

    #[test]
    fn display_is_bare_number() {
        assert_eq!(format!("{}", TileId(12)), "12");
        assert_eq!(format!("{:?}", TileId(12)), "TileId(12)");
    }
}
