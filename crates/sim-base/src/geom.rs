//! 2D-mesh floor plan of the tiled CMP.
//!
//! The paper evaluates a 32-core CMP with a 2D-mesh data network and lays the
//! GLock hierarchy out per mesh row (one secondary lock manager per row, the
//! primary manager in a central row). This module owns all coordinate math:
//! row-major tile numbering, XY hop distances (used by the NoC) and the
//! near-square factorization used for non-square core counts such as 32
//! (8×4).

use crate::ids::TileId;

/// A tile position: `x` is the column, `y` the row.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Coord {
    pub x: u16,
    pub y: u16,
}

/// A rectangular mesh of tiles, numbered row-major.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Mesh2D {
    cols: u16,
    rows: u16,
}

impl Mesh2D {
    /// A mesh with the given dimensions.
    pub fn new(cols: u16, rows: u16) -> Self {
        assert!(cols > 0 && rows > 0, "mesh must be non-empty");
        Mesh2D { cols, rows }
    }

    /// The most-square mesh holding exactly `n` tiles: the factorization
    /// `cols × rows = n` with `cols ≥ rows` and minimal `cols − rows`.
    /// 32 cores → 8×4, 16 → 4×4, 9 → 3×3.
    pub fn near_square(n: usize) -> Self {
        assert!(n > 0, "mesh must be non-empty");
        let mut best = (n as u16, 1u16);
        let mut r = 1usize;
        while r * r <= n {
            if n.is_multiple_of(r) {
                best = ((n / r) as u16, r as u16);
            }
            r += 1;
        }
        Mesh2D::new(best.0, best.1)
    }

    #[inline]
    pub fn cols(&self) -> u16 {
        self.cols
    }

    #[inline]
    pub fn rows(&self) -> u16 {
        self.rows
    }

    /// Total number of tiles.
    #[inline]
    pub fn len(&self) -> usize {
        self.cols as usize * self.rows as usize
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        false // a Mesh2D is never empty by construction
    }

    /// Coordinate of a tile id (row-major numbering).
    #[inline]
    pub fn coord(&self, t: TileId) -> Coord {
        debug_assert!(t.index() < self.len());
        Coord {
            x: t.0 % self.cols,
            y: t.0 / self.cols,
        }
    }

    /// Tile id at a coordinate.
    #[inline]
    pub fn tile(&self, c: Coord) -> TileId {
        debug_assert!(c.x < self.cols && c.y < self.rows);
        TileId(c.y * self.cols + c.x)
    }

    /// Manhattan (XY-routing) hop distance between two tiles.
    #[inline]
    pub fn hops(&self, a: TileId, b: TileId) -> u32 {
        let ca = self.coord(a);
        let cb = self.coord(b);
        (ca.x.abs_diff(cb.x) + ca.y.abs_diff(cb.y)) as u32
    }

    /// The next tile on the XY route from `from` towards `to`
    /// (X dimension first, then Y), or `None` if already there.
    pub fn xy_next_hop(&self, from: TileId, to: TileId) -> Option<TileId> {
        let f = self.coord(from);
        let t = self.coord(to);
        if f.x != t.x {
            let x = if t.x > f.x { f.x + 1 } else { f.x - 1 };
            Some(self.tile(Coord { x, y: f.y }))
        } else if f.y != t.y {
            let y = if t.y > f.y { f.y + 1 } else { f.y - 1 };
            Some(self.tile(Coord { x: f.x, y }))
        } else {
            None
        }
    }

    /// All tile ids in row-major order.
    pub fn tiles(&self) -> impl Iterator<Item = TileId> {
        (0..self.len()).map(TileId::from)
    }

    /// Tile ids of one mesh row.
    pub fn row(&self, y: u16) -> impl Iterator<Item = TileId> + '_ {
        assert!(y < self.rows);
        (0..self.cols).map(move |x| self.tile(Coord { x, y }))
    }

    /// The central column index — where the paper places the vertical
    /// G-lines connecting secondary lock managers to the primary one.
    #[inline]
    pub fn center_col(&self) -> u16 {
        self.cols / 2
    }

    /// The central row index — the row hosting the primary lock manager.
    #[inline]
    pub fn center_row(&self) -> u16 {
        self.rows / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn near_square_factorizations() {
        assert_eq!(Mesh2D::near_square(32), Mesh2D::new(8, 4));
        assert_eq!(Mesh2D::near_square(16), Mesh2D::new(4, 4));
        assert_eq!(Mesh2D::near_square(9), Mesh2D::new(3, 3));
        assert_eq!(Mesh2D::near_square(4), Mesh2D::new(2, 2));
        assert_eq!(Mesh2D::near_square(1), Mesh2D::new(1, 1));
        // primes degrade to a 1-row mesh
        assert_eq!(Mesh2D::near_square(7), Mesh2D::new(7, 1));
    }

    #[test]
    fn coord_round_trip() {
        let m = Mesh2D::new(8, 4);
        for t in m.tiles() {
            assert_eq!(m.tile(m.coord(t)), t);
        }
    }

    #[test]
    fn row_major_numbering() {
        let m = Mesh2D::new(3, 3);
        assert_eq!(m.coord(TileId(0)), Coord { x: 0, y: 0 });
        assert_eq!(m.coord(TileId(5)), Coord { x: 2, y: 1 });
        assert_eq!(m.coord(TileId(8)), Coord { x: 2, y: 2 });
    }

    #[test]
    fn hops_are_manhattan() {
        let m = Mesh2D::new(8, 4);
        assert_eq!(m.hops(TileId(0), TileId(0)), 0);
        assert_eq!(m.hops(TileId(0), TileId(7)), 7);
        assert_eq!(m.hops(TileId(0), TileId(31)), 7 + 3);
        assert_eq!(m.hops(TileId(31), TileId(0)), 10);
    }

    #[test]
    fn xy_route_reaches_destination_in_hops_steps() {
        let m = Mesh2D::new(8, 4);
        for a in m.tiles() {
            for b in m.tiles() {
                let mut cur = a;
                let mut steps = 0;
                while let Some(next) = m.xy_next_hop(cur, b) {
                    // each step moves exactly one hop closer
                    assert_eq!(m.hops(next, b) + 1, m.hops(cur, b));
                    cur = next;
                    steps += 1;
                    assert!(steps <= m.len() as u32, "route too long");
                }
                assert_eq!(cur, b);
                assert_eq!(steps, m.hops(a, b));
            }
        }
    }

    #[test]
    fn xy_routes_x_first() {
        let m = Mesh2D::new(4, 4);
        // from (0,0) to (2,2): first hop must change x
        let next = m.xy_next_hop(TileId(0), TileId(10)).unwrap();
        assert_eq!(m.coord(next), Coord { x: 1, y: 0 });
    }

    #[test]
    fn rows_enumerate_cols_tiles() {
        let m = Mesh2D::new(8, 4);
        let row2: Vec<_> = m.row(2).collect();
        assert_eq!(row2.len(), 8);
        assert_eq!(row2[0], TileId(16));
        assert_eq!(row2[7], TileId(23));
    }
}
