//! Opt-in, zero-cost-when-off event tracing for the whole simulator.
//!
//! Real architecture simulators live and die by their debug traces. This
//! module provides a thread-local tracer (the simulation is
//! single-threaded) that components write cycle-stamped records into via
//! the [`crate::trace_event!`] macro. When tracing is disabled — the default —
//! the macro's only cost is one thread-local flag read, and no formatting
//! happens.
//!
//! ```
//! use glocks_sim_base::trace::{self, TraceMask};
//! use glocks_sim_base::trace_event;
//!
//! trace::enable(TraceMask::GLOCK | TraceMask::COHERENCE, 1000);
//! trace_event!(TraceMask::GLOCK, 42, "TOKEN granted to core {}", 3);
//! let records = trace::drain();
//! assert_eq!(records.len(), 1);
//! trace::disable();
//! ```

use crate::ids::Cycle;
use std::cell::RefCell;
use std::fmt;

/// Bitmask of trace categories.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceMask(pub u32);

impl TraceMask {
    /// Directory / MESI protocol transactions.
    pub const COHERENCE: TraceMask = TraceMask(1 << 0);
    /// L1 cache controller activity.
    pub const L1: TraceMask = TraceMask(1 << 1);
    /// G-line signals and token movement.
    pub const GLOCK: TraceMask = TraceMask(1 << 2);
    /// Lock acquire/release at the workload level.
    pub const LOCK: TraceMask = TraceMask(1 << 3);
    /// Core scheduling (thread program actions).
    pub const CORE: TraceMask = TraceMask(1 << 4);
    /// NoC packet movement.
    pub const NOC: TraceMask = TraceMask(1 << 5);
    /// Everything.
    pub const ALL: TraceMask = TraceMask(u32::MAX);

    #[inline]
    pub fn contains(self, other: TraceMask) -> bool {
        self.0 & other.0 != 0
    }

    pub fn name(self) -> &'static str {
        match self {
            TraceMask::COHERENCE => "coh",
            TraceMask::L1 => "l1",
            TraceMask::GLOCK => "glock",
            TraceMask::LOCK => "lock",
            TraceMask::CORE => "core",
            TraceMask::NOC => "noc",
            _ => "multi",
        }
    }
}

impl std::ops::BitOr for TraceMask {
    type Output = TraceMask;
    fn bitor(self, rhs: TraceMask) -> TraceMask {
        TraceMask(self.0 | rhs.0)
    }
}

/// One trace record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceRecord {
    pub cycle: Cycle,
    pub category: TraceMask,
    pub text: String,
}

impl fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:>8}] {:>5}  {}", self.cycle, self.category.name(), self.text)
    }
}

struct TracerState {
    mask: TraceMask,
    cap: usize,
    ring: std::collections::VecDeque<TraceRecord>,
    dropped: u64,
}

thread_local! {
    static TRACER: RefCell<TracerState> = const {
        RefCell::new(TracerState {
            mask: TraceMask(0),
            cap: 0,
            ring: std::collections::VecDeque::new(),
            dropped: 0,
        })
    };
}

/// Enable tracing for the given categories, keeping at most `cap` records
/// (oldest are dropped first).
pub fn enable(mask: TraceMask, cap: usize) {
    TRACER.with(|t| {
        let mut t = t.borrow_mut();
        t.mask = mask;
        t.cap = cap.max(1);
        t.ring.clear();
        t.dropped = 0;
    });
}

/// Turn tracing off and discard any buffered records.
pub fn disable() {
    TRACER.with(|t| {
        let mut t = t.borrow_mut();
        t.mask = TraceMask(0);
        t.ring.clear();
        t.dropped = 0;
    });
}

/// Is any of `cat`'s bits enabled? (The macro's cheap guard.)
#[inline]
pub fn is_enabled(cat: TraceMask) -> bool {
    TRACER.with(|t| t.borrow().mask.contains(cat))
}

/// Append a record (called by the macro after the guard).
pub fn emit(cat: TraceMask, cycle: Cycle, text: String) {
    TRACER.with(|t| {
        let mut t = t.borrow_mut();
        if !t.mask.contains(cat) {
            return;
        }
        if t.ring.len() == t.cap {
            t.ring.pop_front();
            t.dropped += 1;
        }
        t.ring.push_back(TraceRecord { cycle, category: cat, text });
    });
}

/// Take all buffered records (oldest first).
pub fn drain() -> Vec<TraceRecord> {
    TRACER.with(|t| t.borrow_mut().ring.drain(..).collect())
}

/// Records dropped because the ring was full.
pub fn dropped() -> u64 {
    TRACER.with(|t| t.borrow().dropped)
}

/// Emit a trace record if its category is enabled; formatting only happens
/// when it is.
#[macro_export]
macro_rules! trace_event {
    ($cat:expr, $cycle:expr, $($arg:tt)*) => {
        if $crate::trace::is_enabled($cat) {
            $crate::trace::emit($cat, $cycle, format!($($arg)*));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default_and_cheap() {
        disable();
        assert!(!is_enabled(TraceMask::COHERENCE));
        trace_event!(TraceMask::COHERENCE, 1, "must not appear");
        assert!(drain().is_empty());
    }

    #[test]
    fn captures_enabled_categories_only() {
        enable(TraceMask::GLOCK | TraceMask::LOCK, 100);
        trace_event!(TraceMask::GLOCK, 5, "token to {}", 2);
        trace_event!(TraceMask::COHERENCE, 6, "filtered out");
        trace_event!(TraceMask::LOCK, 7, "acquired");
        let recs = drain();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].cycle, 5);
        assert_eq!(recs[0].text, "token to 2");
        assert_eq!(recs[1].category, TraceMask::LOCK);
        disable();
    }

    #[test]
    fn ring_drops_oldest() {
        enable(TraceMask::ALL, 3);
        for i in 0..5u64 {
            trace_event!(TraceMask::CORE, i, "e{i}");
        }
        assert_eq!(dropped(), 2);
        let recs = drain();
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[0].text, "e2");
        assert_eq!(recs[2].text, "e4");
        disable();
    }

    #[test]
    fn disable_resets_the_dropped_counter() {
        enable(TraceMask::ALL, 1);
        trace_event!(TraceMask::CORE, 0, "a");
        trace_event!(TraceMask::CORE, 1, "b");
        assert_eq!(dropped(), 1);
        disable();
        assert_eq!(dropped(), 0, "a dead session must not leak drop counts");
        // And a fresh session starts from zero, not from stale state.
        enable(TraceMask::ALL, 10);
        trace_event!(TraceMask::CORE, 2, "c");
        assert_eq!(dropped(), 0);
        disable();
    }

    #[test]
    fn display_format() {
        let r = TraceRecord { cycle: 12, category: TraceMask::GLOCK, text: "x".into() };
        assert_eq!(format!("{r}"), "[      12] glock  x");
    }

    #[test]
    fn mask_algebra() {
        let m = TraceMask::L1 | TraceMask::NOC;
        assert!(m.contains(TraceMask::L1));
        assert!(m.contains(TraceMask::NOC));
        assert!(!m.contains(TraceMask::GLOCK));
        assert!(TraceMask::ALL.contains(TraceMask::LOCK));
    }
}
