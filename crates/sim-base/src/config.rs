//! Architectural configuration of the simulated CMP.
//!
//! [`CmpConfig::paper_baseline`] reproduces Table II of the paper: a 32-core
//! tiled CMP at 3 GHz with in-order 2-way cores, 32 KB 4-way L1s (2 cycles),
//! a distributed shared L2 of 256 KB 4-way per tile (12+4 cycles), 400-cycle
//! memory, and an aggressive 2D mesh with 75-byte links.

use crate::geom::Mesh2D;

/// Geometry and timing of one cache level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes (per slice, for the distributed L2).
    pub size_bytes: u64,
    /// Set associativity.
    pub ways: u32,
    /// Access latency in cycles (tag+data for the L1; for the L2 the paper
    /// quotes 12+4, i.e. `latency` covers the tag lookup and
    /// `extra_data_latency` the data array).
    pub latency: u64,
    /// Additional data-array latency (the "+4" of the paper's "12+4").
    pub extra_data_latency: u64,
}

impl CacheConfig {
    /// Number of sets for a given line size.
    pub fn sets(&self, line_bytes: u64) -> usize {
        let lines = self.size_bytes / line_bytes;
        let sets = lines / self.ways as u64;
        assert!(sets > 0, "cache too small for its associativity");
        assert!(
            sets.is_power_of_two(),
            "set count must be a power of two (got {sets})"
        );
        sets as usize
    }

    /// Total access latency (tag + data).
    pub fn total_latency(&self) -> u64 {
        self.latency + self.extra_data_latency
    }
}

/// Interconnection-network parameters (Table II: 2D mesh, 75 GB/s,
/// 75-byte links).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NocConfig {
    /// Link width in bytes; a packet of `n` bytes needs
    /// `ceil(n / link_bytes)` cycles of link serialization.
    pub link_bytes: u32,
    /// Router pipeline depth in cycles (route computation + arbitration +
    /// traversal).
    pub router_latency: u64,
    /// Per-hop link traversal latency in cycles.
    pub link_latency: u64,
    /// Size in bytes of an address-only control message (requests,
    /// invalidations, acks).
    pub ctrl_msg_bytes: u32,
    /// Size in bytes of a data-bearing message (header + one cache line).
    pub data_msg_bytes: u32,
}

/// Parameters of the dedicated GLock hardware.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GlockConfig {
    /// Number of GLocks provided in hardware. The paper provisions two
    /// ("we assume that two GLocks are provided at hardware level").
    pub num_hw_locks: usize,
    /// G-line signal propagation latency in cycles (1 in the paper;
    /// the "longer-latency G-lines" scaling path raises it).
    pub gline_latency: u64,
    /// Maximum number of transmitters a single G-line supports (6 in the
    /// paper, capping a flat network at 7×7 cores).
    pub max_transmitters_per_line: u32,
}

/// Full configuration of the simulated CMP.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CmpConfig {
    /// Number of cores (== tiles; one core per tile).
    pub num_cores: usize,
    /// Core clock in Hz (only used to convert cycles to seconds for
    /// reporting; all simulation is in cycles).
    pub clock_hz: u64,
    /// Superscalar width of the in-order core (2 in Table II): `Compute(n)`
    /// of `n` instructions retires `ceil(n / issue_width)` cycles.
    pub issue_width: u64,
    /// Cache-line size in bytes.
    pub line_bytes: u64,
    pub l1: CacheConfig,
    pub l2: CacheConfig,
    /// Main-memory access latency in cycles.
    pub mem_latency: u64,
    pub noc: NocConfig,
    pub glocks: GlockConfig,
    /// Explicit mesh floor plan (`cols × rows` must equal `num_cores`).
    /// `None` = the near-square factorization of `num_cores`. A first-class
    /// sweep axis: 1024 cores as 32×32 exercises the hierarchical GLock
    /// topology at its design point rather than whatever shape the
    /// factorization happens to pick.
    pub mesh_override: Option<Mesh2D>,
}

impl CmpConfig {
    /// Table II of the paper: the 32-core baseline.
    pub fn paper_baseline() -> Self {
        CmpConfig {
            num_cores: 32,
            clock_hz: 3_000_000_000,
            issue_width: 2,
            line_bytes: 64,
            l1: CacheConfig {
                size_bytes: 32 * 1024,
                ways: 4,
                latency: 2,
                extra_data_latency: 0,
            },
            l2: CacheConfig {
                size_bytes: 256 * 1024,
                ways: 4,
                latency: 12,
                extra_data_latency: 4,
            },
            mem_latency: 400,
            noc: NocConfig {
                link_bytes: 75,
                router_latency: 3,
                link_latency: 1,
                ctrl_msg_bytes: 8,
                data_msg_bytes: 8 + 64,
            },
            glocks: GlockConfig {
                num_hw_locks: 2,
                gline_latency: 1,
                max_transmitters_per_line: 6,
            },
            mesh_override: None,
        }
    }

    /// The baseline scaled to `n` cores (used by Table IV's 4/8/16/32-core
    /// speedup study). Everything but the core count is unchanged; an
    /// explicit mesh override is dropped since it no longer fits.
    pub fn with_cores(mut self, n: usize) -> Self {
        self.num_cores = n;
        self.mesh_override = None;
        self
    }

    /// Pin the mesh floor plan to an explicit shape (and the core count to
    /// match). `with_mesh(Mesh2D::new(32, 32))` is the paper's many-core
    /// scaling end point: 1024 cores.
    pub fn with_mesh(mut self, mesh: Mesh2D) -> Self {
        self.num_cores = mesh.len();
        self.mesh_override = Some(mesh);
        self
    }

    /// The mesh floor plan for this configuration.
    pub fn mesh(&self) -> Mesh2D {
        self.mesh_override
            .unwrap_or_else(|| Mesh2D::near_square(self.num_cores))
    }

    /// Sanity-check internal consistency; panics with a description on
    /// misconfiguration. Called by the simulator constructor.
    pub fn validate(&self) {
        assert!(self.num_cores > 0);
        assert!(self.line_bytes.is_power_of_two());
        assert!(self.issue_width >= 1);
        let _ = self.l1.sets(self.line_bytes);
        let _ = self.l2.sets(self.line_bytes);
        assert!(self.noc.link_bytes > 0);
        assert!(self.noc.data_msg_bytes as u64 >= self.line_bytes);
        assert!(self.glocks.gline_latency >= 1);
        if let Some(m) = self.mesh_override {
            assert!(
                m.len() == self.num_cores,
                "mesh override {}x{} holds {} tiles but the config has {} cores",
                m.cols(),
                m.rows(),
                m.len(),
                self.num_cores
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_baseline_matches_table_ii() {
        let c = CmpConfig::paper_baseline();
        c.validate();
        assert_eq!(c.num_cores, 32);
        assert_eq!(c.clock_hz, 3_000_000_000);
        assert_eq!(c.line_bytes, 64);
        assert_eq!(c.l1.size_bytes, 32 * 1024);
        assert_eq!(c.l1.ways, 4);
        assert_eq!(c.l1.total_latency(), 2);
        assert_eq!(c.l2.size_bytes, 256 * 1024);
        assert_eq!(c.l2.total_latency(), 12 + 4);
        assert_eq!(c.mem_latency, 400);
        assert_eq!(c.noc.link_bytes, 75);
        assert_eq!(c.mesh(), Mesh2D::new(8, 4));
    }

    #[test]
    fn cache_set_counts() {
        let c = CmpConfig::paper_baseline();
        // 32KB / 64B / 4 ways = 128 sets
        assert_eq!(c.l1.sets(64), 128);
        // 256KB / 64B / 4 ways = 1024 sets
        assert_eq!(c.l2.sets(64), 1024);
    }

    #[test]
    fn with_cores_scales_only_core_count() {
        let c = CmpConfig::paper_baseline().with_cores(16);
        c.validate();
        assert_eq!(c.num_cores, 16);
        assert_eq!(c.l1, CmpConfig::paper_baseline().l1);
        assert_eq!(c.mesh(), Mesh2D::new(4, 4));
    }

    #[test]
    fn mesh_override_pins_shape_and_core_count() {
        let c = CmpConfig::paper_baseline().with_mesh(Mesh2D::new(32, 32));
        c.validate();
        assert_eq!(c.num_cores, 1024);
        assert_eq!(c.mesh(), Mesh2D::new(32, 32));
        // 64 cores as a tall mesh instead of the 8×8 factorization.
        let c = CmpConfig::paper_baseline().with_mesh(Mesh2D::new(4, 16));
        c.validate();
        assert_eq!(c.mesh(), Mesh2D::new(4, 16));
        // `with_cores` drops a stale override.
        let c = c.with_cores(32);
        c.validate();
        assert_eq!(c.mesh(), Mesh2D::new(8, 4));
    }

    #[test]
    #[should_panic(expected = "mesh override")]
    fn mismatched_mesh_override_is_rejected() {
        let mut c = CmpConfig::paper_baseline();
        c.mesh_override = Some(Mesh2D::new(8, 8));
        c.validate();
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_cache_geometry_is_rejected() {
        let mut c = CmpConfig::paper_baseline();
        c.l1.size_bytes = 3 * 1024; // 48 lines / 4 ways = 12 sets: not 2^k
        c.validate();
    }
}
