//! Foundation types shared by every crate in the GLocks reproduction.
//!
//! This crate is deliberately dependency-free and contains the vocabulary of
//! the simulated machine: identifiers ([`ids`]), the 2D-mesh floor plan
//! ([`geom`]), the architectural configuration of the simulated CMP
//! ([`config`], reproducing Table II of the paper), simple statistics
//! containers ([`stats`]), a deterministic RNG ([`rng`]) and plain-text
//! table rendering used by the experiment harness ([`table`]).

pub mod config;
pub mod fault;
pub mod geom;
pub mod ids;
pub mod rng;
pub mod snap;
pub mod stats;
pub mod table;
pub mod trace;

pub use config::{CacheConfig, CmpConfig, GlockConfig, NocConfig};
pub use fault::{FaultDecision, FaultInjector, FaultPlan, FaultRates, FaultSite, FaultStats};
pub use geom::{Coord, Mesh2D};
pub use ids::{Addr, CoreId, Cycle, LineAddr, LockId, ThreadId, TileId};
pub use rng::SplitMix64;
pub use snap::{Fingerprint, SnapError, SnapReader, SnapWriter, SNAP_MAGIC, SNAP_VERSION};
