//! Statistics containers used throughout the simulator.

use crate::snap::{SnapError, SnapReader, SnapWriter};
use std::collections::BTreeMap;

/// A monotone event counter.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counter(pub u64);

impl Counter {
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    #[inline]
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    #[inline]
    pub fn get(&self) -> u64 {
        self.0
    }
}

/// A dense histogram over small integer bins (e.g. the paper's grAC axis,
/// 1..=32 concurrent requesters).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    bins: Vec<u64>,
}

impl Histogram {
    /// A histogram with bins `0..n_bins`.
    pub fn new(n_bins: usize) -> Self {
        Histogram {
            bins: vec![0; n_bins],
        }
    }

    /// Record `weight` occurrences of `bin`. Out-of-range bins clamp to the
    /// last bin (keeps the grAC histogram total exact under config drift).
    pub fn record(&mut self, bin: usize, weight: u64) {
        let i = bin.min(self.bins.len() - 1);
        self.bins[i] += weight;
    }

    pub fn bin(&self, i: usize) -> u64 {
        self.bins[i]
    }

    pub fn n_bins(&self) -> usize {
        self.bins.len()
    }

    pub fn total(&self) -> u64 {
        self.bins.iter().sum()
    }

    /// The bins normalized to fractions of the total (all zeros if empty).
    pub fn normalized(&self) -> Vec<f64> {
        let t = self.total();
        if t == 0 {
            return vec![0.0; self.bins.len()];
        }
        self.bins.iter().map(|&b| b as f64 / t as f64).collect()
    }

    /// Merge another histogram of the same shape into this one.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.bins.len(), other.bins.len());
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            *a += b;
        }
    }

    pub fn save_state(&self, w: &mut SnapWriter) {
        w.u64_slice(&self.bins);
    }

    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let bins = r.u64_vec()?;
        if bins.len() != self.bins.len() {
            return Err(SnapError::Corrupt { what: "histogram bin count" });
        }
        self.bins = bins;
        Ok(())
    }
}

/// Running mean/min/max of an f64 series (used for latency summaries).
#[derive(Clone, Copy, Debug, Default)]
pub struct Summary {
    pub count: u64,
    pub sum: f64,
    pub min: f64,
    pub max: f64,
}

impl Summary {
    pub fn record(&mut self, v: f64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    pub fn save_state(&self, w: &mut SnapWriter) {
        w.u64(self.count);
        w.f64(self.sum);
        w.f64(self.min);
        w.f64(self.max);
    }

    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.count = r.u64()?;
        self.sum = r.f64()?;
        self.min = r.f64()?;
        self.max = r.f64()?;
        Ok(())
    }
}

/// A keyed bundle of counters with stable (sorted) iteration order, used for
/// ad-hoc per-component stats dumps.
#[derive(Clone, Debug, Default)]
pub struct CounterSet {
    counters: BTreeMap<&'static str, u64>,
}

impl CounterSet {
    pub fn add(&mut self, key: &'static str, n: u64) {
        *self.counters.entry(key).or_insert(0) += n;
    }

    pub fn get(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(&k, &v)| (k, v))
    }

    pub fn merge(&mut self, other: &CounterSet) {
        for (k, v) in other.iter() {
            self.add(k, v);
        }
    }

    pub fn save_state(&self, w: &mut SnapWriter) {
        w.usize(self.counters.len());
        for (k, v) in self.counters.iter() {
            w.str(k);
            w.u64(*v);
        }
    }

    /// Restore a saved key set. Keys are interned with [`Box::leak`]: the
    /// set's hot-path API takes `&'static str`, and a restore happens at
    /// most a handful of times per process, so the few hundred leaked
    /// bytes are an accepted cost of keeping recording allocation-free.
    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let n = r.usize()?;
        self.counters.clear();
        for _ in 0..n {
            let k = r.str()?;
            let v = r.u64()?;
            let key: &'static str = Box::leak(k.into_boxed_str());
            self.counters.insert(key, v);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::default();
        c.incr();
        c.add(9);
        assert_eq!(c.get(), 10);
    }

    #[test]
    fn histogram_records_and_normalizes() {
        let mut h = Histogram::new(4);
        h.record(0, 1);
        h.record(1, 3);
        h.record(9, 4); // clamps to bin 3
        assert_eq!(h.total(), 8);
        assert_eq!(h.bin(3), 4);
        let n = h.normalized();
        assert!((n.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((n[1] - 0.375).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_normalizes_to_zeros() {
        let h = Histogram::new(3);
        assert_eq!(h.normalized(), vec![0.0; 3]);
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new(3);
        let mut b = Histogram::new(3);
        a.record(0, 2);
        b.record(2, 5);
        a.merge(&b);
        assert_eq!(a.bin(0), 2);
        assert_eq!(a.bin(2), 5);
    }

    #[test]
    fn summary_tracks_extremes_and_mean() {
        let mut s = Summary::default();
        for v in [3.0, 1.0, 2.0] {
            s.record(v);
        }
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert!((s.mean() - 2.0).abs() < 1e-12);
        assert_eq!(Summary::default().mean(), 0.0);
    }

    #[test]
    fn counter_set_merges_sorted() {
        let mut a = CounterSet::default();
        a.add("z", 1);
        a.add("a", 2);
        let mut b = CounterSet::default();
        b.add("z", 3);
        a.merge(&b);
        let keys: Vec<_> = a.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["a", "z"]);
        assert_eq!(a.get("z"), 4);
        assert_eq!(a.get("missing"), 0);
    }
}
