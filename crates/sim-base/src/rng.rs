//! Deterministic pseudo-random numbers for workload generation.
//!
//! The simulator must be bit-reproducible across runs and platforms, so the
//! workloads use this self-contained SplitMix64 generator instead of an
//! external crate. SplitMix64 passes BigCrush and is the canonical seeder
//! for xoshiro-family generators; its statistical quality is far beyond what
//! workload jitter needs.

/// SplitMix64 PRNG (Steele, Lea & Flood, OOPSLA 2014).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed. Distinct seeds give independent
    /// streams for practical purposes.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`. `bound` must be non-zero. Uses
    /// Lemire's multiply-shift reduction (bias is negligible at 64 bits).
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform value in the inclusive range `[lo, hi]`.
    pub fn next_range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        lo + self.next_below(hi - lo + 1)
    }

    /// A fresh generator whose stream is independent of `self`'s
    /// continuation — used to give each simulated thread its own stream.
    pub fn split(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64())
    }

    /// A named sub-stream of a top-level seed: a pure function of
    /// `(seed, domain tag, stream index)`, mirroring the fault injector's
    /// `(seed, site, stream)` scheme. Subsystems that each consume random
    /// numbers under the same top-level seed (fault plans, arrival
    /// generators, workload jitter) derive their generators through this
    /// so enabling or reseeding one never perturbs another's schedule.
    pub fn domain_stream(seed: u64, domain: u64, stream: u64) -> SplitMix64 {
        let mut h = SplitMix64::new(
            seed ^ domain.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ stream.wrapping_mul(0xD605_0B66_4B8B_6E85),
        );
        // One warm-up step so structurally close (seed, domain, stream)
        // triples land on unrelated states.
        let s = h.next_u64();
        SplitMix64::new(s)
    }

    /// The raw generator state, for checkpointing.
    pub fn save_state(&self, w: &mut crate::snap::SnapWriter) {
        w.u64(self.state);
    }

    /// Restore a previously saved generator state.
    pub fn load_state(
        &mut self,
        r: &mut crate::snap::SnapReader<'_>,
    ) -> Result<(), crate::snap::SnapError> {
        self.state = r.u64()?;
        Ok(())
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_answer_vector() {
        // Reference values for seed 0 from the public-domain C reference.
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(r.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(r.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn determinism_across_clones() {
        let mut a = SplitMix64::new(42);
        let mut b = a.clone();
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn bounds_respected() {
        let mut r = SplitMix64::new(7);
        for _ in 0..10_000 {
            let v = r.next_below(13);
            assert!(v < 13);
            let w = r.next_range(5, 9);
            assert!((5..=9).contains(&w));
        }
    }

    #[test]
    fn next_range_single_point() {
        let mut r = SplitMix64::new(1);
        assert_eq!(r.next_range(4, 4), 4);
    }

    #[test]
    fn rough_uniformity() {
        let mut r = SplitMix64::new(99);
        let mut buckets = [0u32; 8];
        for _ in 0..80_000 {
            buckets[r.next_below(8) as usize] += 1;
        }
        for &b in &buckets {
            // expect 10_000 per bucket; allow ±5%
            assert!((9_500..=10_500).contains(&b), "bucket count {b}");
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SplitMix64::new(3);
        let mut xs: Vec<u32> = (0..100).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(xs, (0..100).collect::<Vec<_>>(), "shuffle left input unchanged");
    }

    #[test]
    fn split_streams_diverge() {
        let mut a = SplitMix64::new(5);
        let mut b = a.split();
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn domain_streams_are_independent_and_reproducible() {
        let take = |mut r: SplitMix64| -> Vec<u64> { (0..8).map(|_| r.next_u64()).collect() };
        let a1 = take(SplitMix64::domain_stream(42, 1, 0));
        let a2 = take(SplitMix64::domain_stream(42, 1, 0));
        assert_eq!(a1, a2, "same triple, same stream");
        let b = take(SplitMix64::domain_stream(42, 2, 0));
        let c = take(SplitMix64::domain_stream(42, 1, 1));
        let d = take(SplitMix64::domain_stream(43, 1, 0));
        assert_ne!(a1, b, "domain separates streams");
        assert_ne!(a1, c, "stream index separates streams");
        assert_ne!(a1, d, "seed separates streams");
    }
}
