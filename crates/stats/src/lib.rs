//! `glocks-stats` — a gem5-style typed statistics subsystem for the whole
//! simulator.
//!
//! Real architecture simulators are judged by their measurement substrate:
//! the paper's entire evaluation is per-structure counters, and modern lock
//! papers argue from *latency distributions* (tail handoff latency), not
//! means. This crate provides:
//!
//! * a **zero-cost-when-off registry** ([`registry`]) of named,
//!   hierarchical stats (`Counter`, [`Log2Histogram`], [`TimeSeries`])
//!   registered per component instance (`mem.l1.t3.l1_miss`,
//!   `lock.0.handoff_cycles`, `noc.router.2_1.queue_depth`). Like the
//!   trace ring in `glocks_sim_base::trace`, the registry is thread-local
//!   (the simulation is single-threaded; parallel sweeps give each config
//!   its own thread and therefore its own registry) and every recording
//!   call is guarded by a single thread-local flag read when disabled;
//! * a **schema-versioned dump** ([`StatsDump`]) with deterministic JSON
//!   and CSV encodings — identical seed + config produce byte-identical
//!   JSON, which is what makes run-to-run diffing meaningful;
//! * a **Chrome `trace_event` exporter** ([`chrome`]) that converts the
//!   simulator's debug-trace ring into a timeline loadable in
//!   `chrome://tracing` / Perfetto;
//! * **host-side self-profiling** ([`selfprof`]): wall-time per phase and
//!   simulated-cycles-per-second records emitted as `BENCH_*.json`;
//! * **regression diffing** ([`diff()`] and the `glocks-stats` binary):
//!   compare two dumps and exit nonzero when a watched stat drifts beyond
//!   a tolerance — the gate every future performance PR is judged by.

pub mod chrome;
pub mod diff;
pub mod dump;
pub mod hist;
pub mod json;
pub mod registry;
pub mod selfprof;
pub mod series;

pub use diff::{diff, DiffLine, DiffOptions, DiffReport};
pub use dump::{HistDump, SeriesDump, StatsDump, SCHEMA_VERSION};
pub use hist::{interpolated_quantile, Log2Histogram};
pub use registry::{
    add, disable, enable, hist, hist_record, is_enabled, next_instance, next_sample_cycle, push,
    restore_registry, save_registry, series, set, set_meta, should_sample, snapshot, counter,
    CounterId, HistId,
    SeriesId, StatsConfig,
};
pub use selfprof::{BenchRecord, Stopwatch};
pub use series::TimeSeries;
