//! Chrome `trace_event` exporter for the simulator's debug-trace ring.
//!
//! Converts [`glocks_sim_base::trace::TraceRecord`]s (as returned by
//! `trace::drain()`) into the JSON Object Format understood by
//! `chrome://tracing` and Perfetto. Each record becomes an instant event
//! whose timestamp is the simulated cycle (1 cycle = 1 "microsecond" on
//! the timeline) and whose "process" is the trace category, so G-line
//! traffic, coherence transactions and core scheduling land on separate
//! rows of the same timeline.

use crate::json::Json;
use glocks_sim_base::trace::TraceRecord;
use std::collections::BTreeMap;

/// Encode trace records as a Chrome `trace_event` JSON document.
pub fn chrome_trace_json(records: &[TraceRecord]) -> String {
    // Stable process ids per category, in order of first appearance.
    let mut pids: BTreeMap<&'static str, u64> = BTreeMap::new();
    for r in records {
        let next = pids.len() as u64 + 1;
        pids.entry(r.category.name()).or_insert(next);
    }

    let mut events: Vec<Json> = Vec::with_capacity(records.len() + pids.len());
    // Name each "process" after its trace category.
    for (name, pid) in &pids {
        let mut ev = BTreeMap::new();
        ev.insert("name".to_string(), Json::Str("process_name".into()));
        ev.insert("ph".to_string(), Json::Str("M".into()));
        ev.insert("pid".to_string(), Json::UInt(*pid));
        ev.insert("tid".to_string(), Json::UInt(0));
        let mut args = BTreeMap::new();
        args.insert("name".to_string(), Json::Str((*name).to_string()));
        ev.insert("args".to_string(), Json::Obj(args));
        events.push(Json::Obj(ev));
    }
    for r in records {
        let mut ev = BTreeMap::new();
        ev.insert("name".to_string(), Json::Str(r.text.clone()));
        ev.insert("cat".to_string(), Json::Str(r.category.name().to_string()));
        // Instant event, thread-scoped.
        ev.insert("ph".to_string(), Json::Str("i".into()));
        ev.insert("s".to_string(), Json::Str("t".into()));
        ev.insert("ts".to_string(), Json::UInt(r.cycle));
        ev.insert("pid".to_string(), Json::UInt(pids[r.category.name()]));
        ev.insert("tid".to_string(), Json::UInt(0));
        events.push(Json::Obj(ev));
    }

    let mut root = BTreeMap::new();
    root.insert("traceEvents".to_string(), Json::Arr(events));
    root.insert("displayTimeUnit".to_string(), Json::Str("ns".into()));
    let mut out = Json::Obj(root).encode();
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use glocks_sim_base::trace::TraceMask;

    #[test]
    fn exports_instant_events_with_cycle_timestamps() {
        let recs = vec![
            TraceRecord { cycle: 10, category: TraceMask::GLOCK, text: "token to 3".into() },
            TraceRecord { cycle: 12, category: TraceMask::COHERENCE, text: "GETX 0x40".into() },
            TraceRecord { cycle: 15, category: TraceMask::GLOCK, text: "token to 5".into() },
        ];
        let doc = chrome_trace_json(&recs);
        let v = json::parse(&doc).expect("valid json");
        let events = v.get("traceEvents").unwrap().as_arr().unwrap();
        // 2 process_name metadata events + 3 instants.
        assert_eq!(events.len(), 5);
        let instants: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("i"))
            .collect();
        assert_eq!(instants.len(), 3);
        assert_eq!(instants[0].get("ts").unwrap().as_u64(), Some(10));
        assert_eq!(instants[0].get("name").unwrap().as_str(), Some("token to 3"));
        assert_eq!(instants[0].get("cat").unwrap().as_str(), Some("glock"));
        // Same category ⇒ same pid; different category ⇒ different pid.
        assert_eq!(
            instants[0].get("pid").unwrap().as_u64(),
            instants[2].get("pid").unwrap().as_u64()
        );
        assert_ne!(
            instants[0].get("pid").unwrap().as_u64(),
            instants[1].get("pid").unwrap().as_u64()
        );
    }

    #[test]
    fn empty_ring_still_produces_a_loadable_document() {
        let doc = chrome_trace_json(&[]);
        let v = json::parse(&doc).expect("valid json");
        assert_eq!(v.get("traceEvents").unwrap().as_arr().unwrap().len(), 0);
    }
}
