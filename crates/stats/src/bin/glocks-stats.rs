//! `glocks-stats` — inspect and regression-diff simulator stats dumps.
//!
//! ```text
//! glocks-stats show  DUMP.json                 # human-readable summary
//! glocks-stats csv   DUMP.json                 # flat CSV on stdout
//! glocks-stats quantiles DUMP.json [HIST]      # p50/p90/p99/p999 per histogram
//! glocks-stats diff  OLD.json NEW.json         # regression gate
//!     [--tolerance FRAC]      relative drift allowed (default 0.01)
//!     [--abs-floor N]         ignore changes when both values <= N (default 4)
//!     [--watch PREFIX]        only stats under PREFIX can fail (repeatable)
//!     [--allow-shape-change]  added/removed stats do not fail
//!     [--all]                 print unchanged lines too
//! ```
//!
//! Exit codes: 0 = clean, 1 = out-of-tolerance drift (or shape change),
//! 2 = usage error, 3 = dump missing or unreadable, 4 = dump malformed or
//! from an unsupported schema version. CI pipes a freshly-generated dump
//! against the committed golden dump and fails the build on exit 1; the
//! distinct 3/4 codes let a pipeline tell "the run never produced a dump"
//! from "the dump format drifted" without parsing stderr.

use glocks_stats::diff::DiffKind;
use glocks_stats::{diff, DiffOptions, StatsDump};
use std::io::Write as _;
use std::process::ExitCode;

/// `println!` that shrugs off a closed pipe (`glocks-stats show ... | head`)
/// instead of panicking.
macro_rules! outln {
    ($($arg:tt)*) => {
        let _ = writeln!(std::io::stdout(), $($arg)*);
    };
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: glocks-stats show DUMP.json\n\
         \x20      glocks-stats csv  DUMP.json\n\
         \x20      glocks-stats quantiles DUMP.json [HIST-NAME]\n\
         \x20      glocks-stats diff OLD.json NEW.json [--tolerance FRAC] [--abs-floor N]\n\
         \x20                        [--watch PREFIX]... [--allow-shape-change] [--all]"
    );
    ExitCode::from(2)
}

/// Why a dump failed to load — each variant maps to a distinct exit code
/// so CI can branch on the failure class without scraping stderr.
enum LoadError {
    /// File missing or unreadable (exit 3).
    Unreadable(String),
    /// Parse failure or unsupported `schema_version` (exit 4).
    BadSchema(String),
}

impl LoadError {
    fn exit_code(&self) -> ExitCode {
        match self {
            LoadError::Unreadable(_) => ExitCode::from(3),
            LoadError::BadSchema(_) => ExitCode::from(4),
        }
    }

    fn message(&self) -> &str {
        match self {
            LoadError::Unreadable(m) | LoadError::BadSchema(m) => m,
        }
    }
}

fn load(path: &str) -> Result<StatsDump, LoadError> {
    let src = std::fs::read_to_string(path)
        .map_err(|e| LoadError::Unreadable(format!("{path}: {e}")))?;
    let dump = StatsDump::from_json(&src)
        .map_err(|e| LoadError::BadSchema(format!("{path}: {e}")))?;
    if dump.schema_version != glocks_stats::SCHEMA_VERSION {
        return Err(LoadError::BadSchema(format!(
            "{path}: schema version {} unsupported (this tool reads version {})",
            dump.schema_version,
            glocks_stats::SCHEMA_VERSION
        )));
    }
    Ok(dump)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("show") if args.len() == 2 => show(&args[1]),
        Some("csv") if args.len() == 2 => csv(&args[1]),
        Some("quantiles") if args.len() == 2 || args.len() == 3 => {
            quantiles(&args[1], args.get(2).map(String::as_str))
        }
        Some("diff") if args.len() >= 3 => cmd_diff(&args[1], &args[2], &args[3..]),
        _ => usage(),
    }
}

fn show(path: &str) -> ExitCode {
    let d = match load(path) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: {}", e.message());
            return e.exit_code();
        }
    };
    outln!("schema_version: {}", d.schema_version);
    if !d.meta.is_empty() {
        outln!("meta:");
        for (k, v) in &d.meta {
            outln!("  {k} = {v}");
        }
    }
    outln!("counters ({}):", d.counters.len());
    for (k, v) in &d.counters {
        outln!("  {k:<48} {v}");
    }
    outln!("histograms ({}):", d.hists.len());
    for (k, h) in &d.hists {
        outln!(
            "  {k:<48} n={} mean={:.1} p50={} p99={} max={}",
            h.count,
            h.mean(),
            h.percentile(0.50),
            h.percentile(0.99),
            h.max
        );
    }
    outln!("series ({}):", d.series.len());
    for (k, s) in &d.series {
        let mean = if s.points.is_empty() {
            0.0
        } else {
            s.points.iter().sum::<f64>() / s.points.len() as f64
        };
        outln!(
            "  {k:<48} n={} period={} mean={mean:.2}",
            s.points.len(),
            s.period
        );
    }
    ExitCode::SUCCESS
}

/// Interpolated p50/p90/p99/p999 for every histogram in the dump (or just
/// the named one). Uses the same within-bucket interpolation as the SLO
/// report, so the CLI and the `slo.*` counters agree. A named histogram
/// that is absent exits 2 (usage error: the dump loaded fine, the name is
/// wrong).
fn quantiles(path: &str, name: Option<&str>) -> ExitCode {
    let d = match load(path) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: {}", e.message());
            return e.exit_code();
        }
    };
    let selected: Vec<(&String, &glocks_stats::HistDump)> = match name {
        Some(n) => match d.hists.get_key_value(n) {
            Some((k, h)) => vec![(k, h)],
            None => {
                eprintln!("error: {path}: no histogram named {n:?}");
                return ExitCode::from(2);
            }
        },
        None => d.hists.iter().collect(),
    };
    outln!(
        "{:<48} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "histogram",
        "count",
        "mean",
        "p50",
        "p90",
        "p99",
        "p999"
    );
    for (k, h) in selected {
        outln!(
            "{k:<48} {:>10} {:>10.1} {:>10} {:>10} {:>10} {:>10}",
            h.count,
            h.mean(),
            h.quantile(0.50),
            h.quantile(0.90),
            h.quantile(0.99),
            h.quantile(0.999)
        );
    }
    ExitCode::SUCCESS
}

fn csv(path: &str) -> ExitCode {
    match load(path) {
        Ok(d) => {
            let _ = write!(std::io::stdout(), "{}", d.to_csv());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {}", e.message());
            e.exit_code()
        }
    }
}

fn cmd_diff(old_path: &str, new_path: &str, rest: &[String]) -> ExitCode {
    let mut opts = DiffOptions::default();
    let mut show_all = false;
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--tolerance" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(t) if t >= 0.0 => opts.tolerance = t,
                _ => return usage(),
            },
            "--abs-floor" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(f) if f >= 0.0 => opts.abs_floor = f,
                _ => return usage(),
            },
            "--watch" => match it.next() {
                Some(p) => opts.watch.push(p.clone()),
                None => return usage(),
            },
            "--allow-shape-change" => opts.fail_on_shape_change = false,
            "--all" => show_all = true,
            _ => return usage(),
        }
    }

    let (old, new) = match (load(old_path), load(new_path)) {
        (Ok(o), Ok(n)) => (o, n),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("error: {}", e.message());
            return e.exit_code();
        }
    };

    let report = diff(&old, &new, &opts);
    if let Some(reason) = &report.incomparable {
        eprintln!("FAIL: {reason}");
        return ExitCode::from(1);
    }

    let mut shown = 0usize;
    for line in &report.lines {
        if line.kind == DiffKind::Unchanged && !show_all {
            continue;
        }
        shown += 1;
        let tag = match line.kind {
            DiffKind::Unchanged => "  same",
            DiffKind::WithinTolerance => "    ok",
            DiffKind::OutOfTolerance => {
                if line.failing {
                    "  FAIL"
                } else {
                    " drift"
                }
            }
            DiffKind::Added => " added",
            DiffKind::Removed => "removed",
        };
        match line.kind {
            DiffKind::Added => {
                outln!("{tag}  {:<52} -> {}", line.name, line.new);
            }
            DiffKind::Removed => {
                outln!("{tag}  {:<52} {} ->", line.name, line.old);
            }
            _ => {
                outln!(
                    "{tag}  {:<52} {} -> {}  ({:+.2}%)",
                    line.name,
                    line.old,
                    line.new,
                    100.0 * line.rel
                );
            }
        }
    }

    let changed = report.changed().count();
    let failing = report.failing_lines().count();
    outln!(
        "{} stats compared, {changed} changed, {failing} failing (tolerance {:.2}%{})",
        report.lines.len(),
        100.0 * opts.tolerance,
        if opts.watch.is_empty() {
            String::new()
        } else {
            format!(", watching {}", opts.watch.join(" "))
        }
    );
    if shown == 0 && changed == 0 {
        outln!("dumps are identical");
    }
    if report.failed {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
