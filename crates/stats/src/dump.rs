//! Serializable, deterministically-ordered snapshot of a stats session.
//!
//! A [`StatsDump`] is what [`crate::registry::snapshot`] returns, what the
//! harness writes to `--stats-json` directories, and what `glocks-stats
//! diff` consumes. The encoding is intentionally boring: sorted keys,
//! integer counters as integer literals, no wall-clock timestamps — so an
//! identical seed + config produces a byte-identical file and regression
//! diffing reduces to structured comparison instead of fuzzy matching.

use crate::hist::{Log2Histogram, N_BUCKETS};
use crate::json::{self, Json};
use crate::series::TimeSeries;
use std::collections::BTreeMap;

/// Bumped whenever the dump layout changes incompatibly. `glocks-stats
/// diff` refuses to compare dumps with different schema versions.
pub const SCHEMA_VERSION: u32 = 1;

/// Exported form of a [`Log2Histogram`]: summary moments plus the sparse
/// set of non-empty buckets (`(bucket_index, count)` pairs).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistDump {
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    /// Non-empty buckets only, ascending by index.
    pub buckets: Vec<(u32, u64)>,
}

impl HistDump {
    pub fn from_hist(h: &Log2Histogram) -> Self {
        HistDump {
            count: h.count(),
            sum: h.sum(),
            min: h.min(),
            max: h.max(),
            buckets: h
                .buckets()
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .map(|(i, &c)| (i as u32, c))
                .collect(),
        }
    }

    /// Rebuild the full histogram (for percentile queries on a parsed dump).
    pub fn to_hist(&self) -> Log2Histogram {
        let mut h = Log2Histogram::new();
        for &(i, c) in &self.buckets {
            let (lo, _) = Log2Histogram::bucket_bounds(i as usize);
            h.record_n(lo, c);
        }
        h
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Percentile resolved to a bucket upper bound, clamped to the
    /// recorded max (same contract as [`Log2Histogram::percentile`]).
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let p = p.clamp(0.0, 1.0);
        let rank = ((p * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for &(i, c) in &self.buckets {
            seen += c;
            if seen >= rank {
                return Log2Histogram::bucket_bounds(i as usize).1.min(self.max);
            }
        }
        self.max
    }

    /// Interpolated quantile over the sparse buckets — same contract as
    /// [`Log2Histogram::quantile`] (shared with the SLO report and the
    /// `glocks-stats quantiles` subcommand).
    pub fn quantile(&self, q: f64) -> u64 {
        crate::hist::interpolated_quantile(
            self.buckets.iter().map(|&(i, c)| (i as usize, c)),
            self.count,
            self.min,
            self.max,
            q,
        )
    }
}

/// Exported form of a [`TimeSeries`].
#[derive(Clone, Debug, PartialEq)]
pub struct SeriesDump {
    /// Cycles between consecutive points (after any decimation).
    pub period: u64,
    pub points: Vec<f64>,
}

impl SeriesDump {
    pub fn from_series(s: &TimeSeries) -> Self {
        SeriesDump { period: s.period(), points: s.points().to_vec() }
    }
}

/// A complete stats snapshot.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct StatsDump {
    pub schema_version: u32,
    /// Free-form annotations (bench name, lock backend, thread count, …).
    /// Deliberately excludes wall-clock time so dumps stay reproducible.
    pub meta: BTreeMap<String, String>,
    pub counters: BTreeMap<String, u64>,
    pub hists: BTreeMap<String, HistDump>,
    pub series: BTreeMap<String, SeriesDump>,
}

impl StatsDump {
    /// Deterministic compact JSON encoding.
    pub fn to_json(&self) -> String {
        let mut root = BTreeMap::new();
        root.insert(
            "schema_version".to_string(),
            Json::UInt(self.schema_version as u64),
        );
        root.insert(
            "meta".to_string(),
            Json::Obj(
                self.meta
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                    .collect(),
            ),
        );
        root.insert(
            "counters".to_string(),
            Json::Obj(
                self.counters
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::UInt(*v)))
                    .collect(),
            ),
        );
        root.insert(
            "hists".to_string(),
            Json::Obj(
                self.hists
                    .iter()
                    .map(|(k, h)| {
                        let mut m = BTreeMap::new();
                        m.insert("count".to_string(), Json::UInt(h.count));
                        m.insert("sum".to_string(), Json::UInt(h.sum));
                        m.insert("min".to_string(), Json::UInt(h.min));
                        m.insert("max".to_string(), Json::UInt(h.max));
                        m.insert(
                            "buckets".to_string(),
                            Json::Arr(
                                h.buckets
                                    .iter()
                                    .map(|&(i, c)| {
                                        Json::Arr(vec![
                                            Json::UInt(i as u64),
                                            Json::UInt(c),
                                        ])
                                    })
                                    .collect(),
                            ),
                        );
                        (k.clone(), Json::Obj(m))
                    })
                    .collect(),
            ),
        );
        root.insert(
            "series".to_string(),
            Json::Obj(
                self.series
                    .iter()
                    .map(|(k, s)| {
                        let mut m = BTreeMap::new();
                        m.insert("period".to_string(), Json::UInt(s.period));
                        m.insert(
                            "points".to_string(),
                            Json::Arr(s.points.iter().map(|&p| Json::Num(p)).collect()),
                        );
                        (k.clone(), Json::Obj(m))
                    })
                    .collect(),
            ),
        );
        let mut out = Json::Obj(root).encode();
        out.push('\n');
        out
    }

    /// Parse a dump previously written by [`StatsDump::to_json`].
    pub fn from_json(src: &str) -> Result<StatsDump, String> {
        let v = json::parse(src)?;
        let schema_version = v
            .get("schema_version")
            .and_then(Json::as_u64)
            .ok_or("missing schema_version")? as u32;
        let mut dump = StatsDump { schema_version, ..StatsDump::default() };
        if let Some(meta) = v.get("meta").and_then(Json::as_obj) {
            for (k, mv) in meta {
                let s = mv.as_str().ok_or_else(|| format!("meta {k:?} not a string"))?;
                dump.meta.insert(k.clone(), s.to_string());
            }
        }
        if let Some(counters) = v.get("counters").and_then(Json::as_obj) {
            for (k, cv) in counters {
                let n = cv
                    .as_u64()
                    .ok_or_else(|| format!("counter {k:?} not a u64"))?;
                dump.counters.insert(k.clone(), n);
            }
        }
        if let Some(hists) = v.get("hists").and_then(Json::as_obj) {
            for (k, hv) in hists {
                let field = |name: &str| -> Result<u64, String> {
                    hv.get(name)
                        .and_then(Json::as_u64)
                        .ok_or_else(|| format!("hist {k:?} missing {name}"))
                };
                let mut buckets = Vec::new();
                for b in hv
                    .get("buckets")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| format!("hist {k:?} missing buckets"))?
                {
                    let pair = b.as_arr().ok_or("bucket entry not a pair")?;
                    let i = pair
                        .first()
                        .and_then(Json::as_u64)
                        .ok_or("bad bucket index")?;
                    let c = pair.get(1).and_then(Json::as_u64).ok_or("bad bucket count")?;
                    if i as usize >= N_BUCKETS {
                        return Err(format!("hist {k:?} bucket index {i} out of range"));
                    }
                    buckets.push((i as u32, c));
                }
                dump.hists.insert(
                    k.clone(),
                    HistDump {
                        count: field("count")?,
                        sum: field("sum")?,
                        min: field("min")?,
                        max: field("max")?,
                        buckets,
                    },
                );
            }
        }
        if let Some(series) = v.get("series").and_then(Json::as_obj) {
            for (k, sv) in series {
                let period = sv
                    .get("period")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("series {k:?} missing period"))?;
                let mut points = Vec::new();
                for p in sv
                    .get("points")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| format!("series {k:?} missing points"))?
                {
                    points.push(p.as_f64().ok_or("series point not a number")?);
                }
                dump.series.insert(k.clone(), SeriesDump { period, points });
            }
        }
        Ok(dump)
    }

    /// Flat CSV view (`kind,name,field,value`) — convenient for spreadsheet
    /// spot checks; the JSON form remains the canonical one.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("kind,name,field,value\n");
        let esc = |s: &str| {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        for (k, v) in &self.meta {
            out.push_str(&format!("meta,{},value,{}\n", esc(k), esc(v)));
        }
        for (k, v) in &self.counters {
            out.push_str(&format!("counter,{},value,{v}\n", esc(k)));
        }
        for (k, h) in &self.hists {
            let name = esc(k);
            out.push_str(&format!("hist,{name},count,{}\n", h.count));
            out.push_str(&format!("hist,{name},sum,{}\n", h.sum));
            out.push_str(&format!("hist,{name},min,{}\n", h.min));
            out.push_str(&format!("hist,{name},max,{}\n", h.max));
            for &(i, c) in &h.buckets {
                out.push_str(&format!("hist,{name},bucket{i},{c}\n"));
            }
        }
        for (k, s) in &self.series {
            let name = esc(k);
            out.push_str(&format!("series,{name},period,{}\n", s.period));
            for (i, p) in s.points.iter().enumerate() {
                let mut pv = String::new();
                json::write_f64(&mut pv, *p);
                out.push_str(&format!("series,{name},p{i},{pv}\n"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_dump() -> StatsDump {
        let mut h = Log2Histogram::new();
        h.record_n(3, 90);
        h.record_n(200, 10);
        let mut s = TimeSeries::new(64);
        s.push(1.0);
        s.push(2.5);
        let mut d = StatsDump { schema_version: SCHEMA_VERSION, ..StatsDump::default() };
        d.meta.insert("bench".into(), "SCTR".into());
        d.counters.insert("glock.0.grants".into(), 4096);
        d.counters.insert("sim.cycles".into(), 123_456_789);
        d.hists.insert("lock.0.handoff_cycles".into(), HistDump::from_hist(&h));
        d.series.insert(
            "noc.router.1_1.queue_depth".into(),
            SeriesDump::from_series(&s),
        );
        d
    }

    #[test]
    fn json_roundtrip_is_lossless() {
        let d = sample_dump();
        let enc = d.to_json();
        let back = StatsDump::from_json(&enc).expect("parses");
        assert_eq!(back, d);
    }

    #[test]
    fn json_encoding_is_byte_stable() {
        let a = sample_dump().to_json();
        let b = sample_dump().to_json();
        assert_eq!(a, b);
        assert!(a.ends_with('\n'));
        assert!(a.contains("\"schema_version\":1"));
    }

    #[test]
    fn hist_dump_percentiles_match_source() {
        let mut h = Log2Histogram::new();
        h.record_n(3, 90);
        h.record_n(200, 10);
        let d = HistDump::from_hist(&h);
        assert_eq!(d.percentile(0.5), h.percentile(0.5));
        assert_eq!(d.percentile(0.99), h.percentile(0.99));
        assert_eq!(d.quantile(0.5), h.quantile(0.5));
        assert_eq!(d.quantile(0.999), h.quantile(0.999));
        assert_eq!(d.mean(), h.mean());
        let rebuilt = d.to_hist();
        assert_eq!(rebuilt.count(), h.count());
    }

    #[test]
    fn csv_lists_every_stat() {
        let csv = sample_dump().to_csv();
        assert!(csv.starts_with("kind,name,field,value\n"));
        assert!(csv.contains("counter,glock.0.grants,value,4096\n"));
        assert!(csv.contains("hist,lock.0.handoff_cycles,count,100\n"));
        assert!(csv.contains("series,noc.router.1_1.queue_depth,period,64\n"));
        assert!(csv.contains("meta,bench,value,SCTR\n"));
    }

    #[test]
    fn rejects_out_of_range_bucket() {
        let src = r#"{"schema_version":1,"meta":{},"counters":{},"hists":{"x":{"count":1,"sum":1,"min":1,"max":1,"buckets":[[99,1]]}},"series":{}}"#;
        assert!(StatsDump::from_json(src).is_err());
    }
}
