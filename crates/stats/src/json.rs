//! A minimal, dependency-free JSON reader/writer.
//!
//! The workspace is built offline (no serde), and the stats subsystem
//! needs both directions: deterministic encoding for byte-identical dumps
//! and parsing for the `glocks-stats diff` regression gate. Numbers are
//! kept as `f64` with an exactness carve-out for `u64` counters (stored
//! losslessly as unsigned integer literals up to `2^63`, far beyond any
//! cycle count a run produces).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value. Object keys are sorted (`BTreeMap`), which also
/// makes re-encoding deterministic.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Unsigned integer literal (counters, cycle totals).
    UInt(u64),
    /// Any other number.
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(v) => Some(*v),
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 => Some(*v as u64),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::UInt(v) => Some(*v as f64),
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_obj().and_then(|m| m.get(key))
    }

    /// Deterministic compact encoding.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Num(v) => write_f64(out, *v),
            Json::Str(s) => write_str(out, s),
            Json::Arr(a) => {
                out.push('[');
                for (i, v) in a.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(m) => {
                out.push('{');
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Escape and quote a string.
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Encode an `f64` deterministically (shortest round-trip form via Rust's
/// standard formatter; NaN/inf degrade to null, which JSON cannot carry).
pub fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
        // "{}" prints integral floats without a dot; keep them
        // distinguishable from integer literals on re-parse is not
        // required, but a trailing ".0" keeps the encoding stable.
        if v.fract() == 0.0 && !out.ends_with(|c: char| c == '.' || !c.is_ascii_digit()) {
            // only append when the formatter produced a bare integer
            if !out[out.rfind(|c: char| !(c.is_ascii_digit() || c == '-')).map_or(0, |i| i + 1)..]
                .contains('.')
            {
                out.push_str(".0");
            }
        }
    } else {
        out.push_str("null");
    }
}

/// Parse a JSON document.
pub fn parse(src: &str) -> Result<Json, String> {
    let mut p = Parser { b: src.as_bytes(), i: 0 };
    p.ws();
    let v = p.value()?;
    p.ws();
    if p.i != p.b.len() {
        return Err(format!("trailing bytes at offset {}", p.i));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at offset {}, found {:?}",
                c as char,
                self.i,
                self.peek().map(|b| b as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.obj(),
            Some(b'[') => self.arr(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'n') => self.lit("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at offset {}", self.i)),
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at offset {}", self.i))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.i += 1;
        }
        let s = std::str::from_utf8(&self.b[start..self.i]).expect("ascii");
        if !s.contains(['.', 'e', 'E']) {
            if let Ok(u) = s.parse::<u64>() {
                return Ok(Json::UInt(u));
            }
        }
        s.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number {s:?} at offset {start}: {e}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .b
                                .get(self.i + 1..self.i + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.i += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.i += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.b[self.i..])
                        .map_err(|e| format!("invalid utf-8 in string: {e}"))?;
                    let c = rest.chars().next().expect("nonempty");
                    out.push(c);
                    self.i += c.len_utf8();
                }
            }
        }
    }

    fn arr(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Json::Arr(out));
        }
        loop {
            self.ws();
            out.push(self.value()?);
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(out));
                }
                other => return Err(format!("expected , or ] but found {other:?}")),
            }
        }
    }

    fn obj(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut out = BTreeMap::new();
        self.ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Obj(out));
        }
        loop {
            self.ws();
            let k = self.string()?;
            self.ws();
            self.expect(b':')?;
            self.ws();
            let v = self.value()?;
            out.insert(k, v);
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(out));
                }
                other => return Err(format!("expected , or }} but found {other:?}")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_a_nested_document() {
        let src = r#"{"a": [1, 2.5, -3], "b": {"x": "hi\nthere", "y": true}, "c": null}"#;
        let v = parse(src).expect("parses");
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0], Json::UInt(1));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1].as_f64(), Some(2.5));
        assert_eq!(
            v.get("b").unwrap().get("x").unwrap().as_str(),
            Some("hi\nthere")
        );
        let enc = v.encode();
        assert_eq!(parse(&enc).expect("re-parses"), v);
    }

    #[test]
    fn u64_counters_roundtrip_losslessly() {
        let big = u64::MAX - 3;
        let v = parse(&format!("{{\"n\": {big}}}")).unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), Some(big));
        assert_eq!(v.encode(), format!("{{\"n\":{big}}}"));
    }

    #[test]
    fn floats_keep_a_decimal_point() {
        let mut s = String::new();
        write_f64(&mut s, 3.0);
        assert_eq!(s, "3.0");
        let mut s = String::new();
        write_f64(&mut s, 0.125);
        assert_eq!(s, "0.125");
        let mut s = String::new();
        write_f64(&mut s, -2.0);
        assert_eq!(s, "-2.0");
    }

    #[test]
    fn encoding_is_deterministic_and_sorted() {
        let mut m = BTreeMap::new();
        m.insert("z".to_string(), Json::UInt(1));
        m.insert("a".to_string(), Json::Bool(false));
        let v = Json::Obj(m);
        assert_eq!(v.encode(), r#"{"a":false,"z":1}"#);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn escapes_control_characters() {
        let v = Json::Str("a\"b\\c\u{1}".into());
        assert_eq!(v.encode(), "\"a\\\"b\\\\c\\u0001\"");
        assert_eq!(parse(&v.encode()).unwrap(), v);
    }
}
