//! Power-of-two-bucketed histograms for latency distributions.
//!
//! A [`Log2Histogram`] covers the full `u64` range in 65 buckets: bucket 0
//! holds the value 0 and bucket `i ≥ 1` holds values in `[2^(i-1), 2^i)`.
//! That is enough resolution to separate a 2–4-cycle G-line handoff from a
//! coherence-bound MCS handoff (tens to hundreds of cycles) while keeping
//! recording O(1) and the memory footprint constant.

/// Number of buckets: value 0 plus one bucket per `u64` bit position.
pub const N_BUCKETS: usize = 65;

/// A histogram over `u64` samples with power-of-two bucket edges.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Log2Histogram {
    buckets: [u64; N_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Log2Histogram {
            buckets: [0; N_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Log2Histogram {
    pub fn new() -> Self {
        Self::default()
    }

    /// The bucket index a value falls into.
    #[inline]
    pub fn bucket_index(v: u64) -> usize {
        match v {
            0 => 0,
            _ => 64 - v.leading_zeros() as usize,
        }
    }

    /// `[lo, hi]` inclusive value range of bucket `i`.
    pub fn bucket_bounds(i: usize) -> (u64, u64) {
        assert!(i < N_BUCKETS, "bucket {i} out of range");
        match i {
            0 => (0, 0),
            64 => (1u64 << 63, u64::MAX),
            _ => (1u64 << (i - 1), (1u64 << i) - 1),
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Record `n` occurrences of `v`.
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.buckets[Self::bucket_index(v)] += n;
        self.count += n;
        self.sum = self.sum.saturating_add(v.saturating_mul(n));
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample (0 on an empty histogram).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    pub fn max(&self) -> u64 {
        self.max
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Raw bucket counts.
    pub fn buckets(&self) -> &[u64; N_BUCKETS] {
        &self.buckets
    }

    /// The value below which a fraction `p ∈ [0, 1]` of samples fall,
    /// resolved to the upper bound of the containing bucket (clamped to
    /// the observed max). 0 on an empty histogram.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let p = p.clamp(0.0, 1.0);
        // ceil(p * count), at least 1: the rank of the wanted sample.
        let rank = ((p * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                return Self::bucket_bounds(i).1.min(self.max);
            }
        }
        self.max
    }

    /// Interpolated quantile: like [`Log2Histogram::percentile`] but
    /// resolved *within* the containing bucket by linear interpolation (see
    /// [`interpolated_quantile`]), so p99/p999 SLO figures do not snap to
    /// power-of-two edges.
    pub fn quantile(&self, q: f64) -> u64 {
        interpolated_quantile(
            self.buckets.iter().enumerate().map(|(i, &c)| (i, c)),
            self.count,
            self.min(),
            self.max,
            q,
        )
    }

    pub fn save_state(&self, w: &mut glocks_sim_base::snap::SnapWriter) {
        w.u64_slice(&self.buckets);
        w.u64(self.count);
        w.u64(self.sum);
        // raw min (u64::MAX when empty), so the sentinel round-trips
        w.u64(self.min);
        w.u64(self.max);
    }

    pub fn load_state(
        &mut self,
        r: &mut glocks_sim_base::snap::SnapReader<'_>,
    ) -> Result<(), glocks_sim_base::snap::SnapError> {
        let buckets = r.u64_vec()?;
        if buckets.len() != N_BUCKETS {
            return Err(glocks_sim_base::snap::SnapError::Corrupt {
                what: "log2 histogram bucket count",
            });
        }
        self.buckets.copy_from_slice(&buckets);
        self.count = r.u64()?;
        self.sum = r.u64()?;
        self.min = r.u64()?;
        self.max = r.u64()?;
        Ok(())
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Log2Histogram) {
        if other.count == 0 {
            return;
        }
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// The value below which a fraction `q ∈ [0, 1]` of samples fall, linearly
/// interpolated within the containing log2 bucket: with `seen` samples
/// below bucket `i` (bounds `[lo, hi]`, `c` samples), the quantile resolves
/// to `lo + (q·count − seen)/c · (hi − lo + 1)`, capped at `hi` and clamped
/// to the observed `[min, max]`. This is the shared helper behind the SLO
/// report and `glocks-stats quantiles`; `buckets` is a sparse or dense
/// `(bucket_index, count)` sequence ascending by index. Returns 0 when
/// `count` is 0.
pub fn interpolated_quantile(
    buckets: impl IntoIterator<Item = (usize, u64)>,
    count: u64,
    min: u64,
    max: u64,
    q: f64,
) -> u64 {
    if count == 0 {
        return 0;
    }
    let target = q.clamp(0.0, 1.0) * count as f64;
    let mut seen = 0u64;
    for (i, c) in buckets {
        if c == 0 {
            continue;
        }
        let next = seen + c;
        if next as f64 >= target {
            let (lo, hi) = Log2Histogram::bucket_bounds(i);
            let width = (hi - lo).saturating_add(1);
            let frac = ((target - seen as f64) / c as f64).clamp(0.0, 1.0);
            // Saturating f64→u64 cast keeps the top bucket (hi = u64::MAX)
            // well-defined; the final clamp bounds it by observed samples.
            let v = (lo as f64 + frac * width as f64).min(hi as f64) as u64;
            return v.clamp(min, max);
        }
        seen = next;
    }
    max
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges_are_exact_powers_of_two() {
        // Every boundary value lands in the bucket whose lower edge it is.
        assert_eq!(Log2Histogram::bucket_index(0), 0);
        assert_eq!(Log2Histogram::bucket_index(1), 1);
        assert_eq!(Log2Histogram::bucket_index(2), 2);
        assert_eq!(Log2Histogram::bucket_index(3), 2);
        assert_eq!(Log2Histogram::bucket_index(4), 3);
        assert_eq!(Log2Histogram::bucket_index(7), 3);
        assert_eq!(Log2Histogram::bucket_index(8), 4);
        assert_eq!(Log2Histogram::bucket_index(u64::MAX), 64);
        for i in 1..64usize {
            let (lo, hi) = Log2Histogram::bucket_bounds(i);
            assert_eq!(Log2Histogram::bucket_index(lo), i);
            assert_eq!(Log2Histogram::bucket_index(hi), i);
            assert_eq!(Log2Histogram::bucket_index(hi + 1), i + 1);
        }
    }

    #[test]
    fn records_track_count_sum_min_max() {
        let mut h = Log2Histogram::new();
        assert_eq!(h.min(), 0);
        for v in [3u64, 9, 0, 100] {
            h.record(v);
        }
        h.record_n(5, 2);
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 3 + 9 + 100 + 10);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 122.0 / 6.0).abs() < 1e-12);
        assert_eq!(h.buckets()[0], 1); // the 0 sample
        assert_eq!(h.buckets()[2], 1); // 3
        assert_eq!(h.buckets()[3], 2); // 5, 5
        assert_eq!(h.buckets()[4], 1); // 9
        assert_eq!(h.buckets()[7], 1); // 100
    }

    #[test]
    fn percentiles_walk_buckets() {
        let mut h = Log2Histogram::new();
        // 90 fast handoffs at 3 cycles, 10 slow at 200.
        h.record_n(3, 90);
        h.record_n(200, 10);
        assert_eq!(h.percentile(0.5), 3, "median is in the [2,4) bucket");
        assert_eq!(h.percentile(0.9), 3);
        // p99 falls in the [128, 256) bucket; clamped to the observed max.
        assert_eq!(h.percentile(0.99), 200);
        assert_eq!(h.percentile(1.0), 200);
        assert_eq!(h.percentile(0.0), 3, "p0 resolves to the first bucket");
        assert_eq!(Log2Histogram::new().percentile(0.5), 0);
    }

    #[test]
    fn quantile_interpolates_within_one_bucket() {
        // 4 samples, all in the [8, 16) bucket. The plain percentile snaps
        // to the bucket edge; the quantile spreads the mass evenly across
        // the bucket: p25 → 8+0.25·8 = 10, p50 → 12, p75 → 14.
        let mut h = Log2Histogram::new();
        for v in [8u64, 10, 12, 15] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.25), 10);
        assert_eq!(h.quantile(0.5), 12);
        assert_eq!(h.quantile(0.75), 14);
        assert_eq!(h.quantile(0.0), 8, "p0 is the observed min");
        assert_eq!(h.quantile(1.0), 15, "p100 is the observed max");
    }

    #[test]
    fn quantile_edge_cases() {
        assert_eq!(Log2Histogram::new().quantile(0.5), 0, "empty → 0");
        let mut h = Log2Histogram::new();
        h.record_n(3, 90);
        h.record_n(200, 10);
        // p999 lands among the 10 slow samples in [128, 256), clamped to
        // the observed max.
        assert_eq!(h.quantile(0.999), 200);
        let q50 = h.quantile(0.5);
        assert!((2..=3).contains(&q50), "median stays in the [2,4) bucket, got {q50}");
        // Monotone in q.
        let qs: Vec<u64> = [0.0, 0.5, 0.9, 0.99, 0.999, 1.0]
            .iter()
            .map(|&q| h.quantile(q))
            .collect();
        assert!(qs.windows(2).all(|w| w[0] <= w[1]), "{qs:?}");
    }

    #[test]
    fn merge_combines_everything() {
        let mut a = Log2Histogram::new();
        let mut b = Log2Histogram::new();
        a.record_n(2, 5);
        b.record_n(1000, 3);
        b.record(1);
        a.merge(&b);
        assert_eq!(a.count(), 9);
        assert_eq!(a.sum(), 10 + 3000 + 1);
        assert_eq!(a.min(), 1);
        assert_eq!(a.max(), 1000);
        let mut empty = Log2Histogram::new();
        empty.merge(&a);
        assert_eq!(empty, a);
        a.merge(&Log2Histogram::new());
        assert_eq!(empty, a, "merging an empty histogram is a no-op");
    }
}
