//! Host-side self-profiling: how fast is the simulator itself?
//!
//! A [`Stopwatch`] measures wall time around a phase of host work; the
//! resulting [`BenchRecord`]s (wall seconds, simulated cycles, simulated
//! cycles per wall second) are collected thread-locally and written out as
//! `BENCH_*.json`. These files intentionally contain wall-clock numbers and
//! are therefore *not* part of the byte-identical stats dumps — they are
//! the evidence for "stats-off runs at pre-PR speed" and for tracking
//! simulator throughput across PRs.

use crate::json::Json;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::time::Instant;

/// One profiled phase of host work.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchRecord {
    /// Phase label, e.g. `SCTR_GLock_16t`.
    pub label: String,
    /// Wall-clock seconds spent in the phase.
    pub wall_s: f64,
    /// Simulated cycles covered by the phase (0 for non-simulation work).
    pub sim_cycles: u64,
}

impl BenchRecord {
    /// Simulated cycles per wall-clock second (the simulator's KIPS-style
    /// throughput figure). 0 when no cycles were simulated.
    pub fn cycles_per_sec(&self) -> f64 {
        if self.wall_s > 0.0 {
            self.sim_cycles as f64 / self.wall_s
        } else {
            0.0
        }
    }
}

thread_local! {
    static RECORDS: RefCell<Vec<BenchRecord>> = const { RefCell::new(Vec::new()) };
}

/// A running wall-clock timer for one phase.
pub struct Stopwatch {
    label: String,
    started: Instant,
}

impl Stopwatch {
    pub fn start(label: &str) -> Self {
        Stopwatch { label: label.to_string(), started: Instant::now() }
    }

    /// Elapsed wall seconds so far.
    pub fn elapsed_s(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Stop the watch and record the phase in this thread's profile.
    pub fn stop(self, sim_cycles: u64) -> BenchRecord {
        let rec = BenchRecord {
            label: self.label,
            wall_s: self.started.elapsed().as_secs_f64(),
            sim_cycles,
        };
        RECORDS.with(|r| r.borrow_mut().push(rec.clone()));
        rec
    }
}

/// Take all records collected on this thread (oldest first).
pub fn drain() -> Vec<BenchRecord> {
    RECORDS.with(|r| std::mem::take(&mut *r.borrow_mut()))
}

/// Encode records as a `BENCH_*.json` document.
pub fn bench_json(records: &[BenchRecord]) -> String {
    let total_wall: f64 = records.iter().map(|r| r.wall_s).sum();
    let total_cycles: u64 = records.iter().map(|r| r.sim_cycles).sum();
    let mut root = BTreeMap::new();
    root.insert(
        "phases".to_string(),
        Json::Arr(
            records
                .iter()
                .map(|r| {
                    let mut m = BTreeMap::new();
                    m.insert("label".to_string(), Json::Str(r.label.clone()));
                    m.insert("wall_s".to_string(), Json::Num(r.wall_s));
                    m.insert("sim_cycles".to_string(), Json::UInt(r.sim_cycles));
                    m.insert(
                        "cycles_per_sec".to_string(),
                        Json::Num(r.cycles_per_sec()),
                    );
                    Json::Obj(m)
                })
                .collect(),
        ),
    );
    root.insert("total_wall_s".to_string(), Json::Num(total_wall));
    root.insert("total_sim_cycles".to_string(), Json::UInt(total_cycles));
    root.insert(
        "total_cycles_per_sec".to_string(),
        Json::Num(if total_wall > 0.0 { total_cycles as f64 / total_wall } else { 0.0 }),
    );
    let mut out = Json::Obj(root).encode();
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn stopwatch_records_into_thread_profile() {
        drain(); // isolate from other tests on this thread
        let w = Stopwatch::start("phase_a");
        assert!(w.elapsed_s() >= 0.0);
        let rec = w.stop(1_000_000);
        assert_eq!(rec.label, "phase_a");
        assert!(rec.wall_s >= 0.0);
        let recs = drain();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0], rec);
        assert!(drain().is_empty(), "drain takes ownership");
    }

    #[test]
    fn bench_json_totals_add_up() {
        let recs = vec![
            BenchRecord { label: "a".into(), wall_s: 0.5, sim_cycles: 100 },
            BenchRecord { label: "b".into(), wall_s: 1.5, sim_cycles: 300 },
        ];
        let doc = bench_json(&recs);
        let v = json::parse(&doc).expect("valid json");
        assert_eq!(v.get("total_sim_cycles").unwrap().as_u64(), Some(400));
        assert_eq!(v.get("total_wall_s").unwrap().as_f64(), Some(2.0));
        assert_eq!(v.get("total_cycles_per_sec").unwrap().as_f64(), Some(200.0));
        let phases = v.get("phases").unwrap().as_arr().unwrap();
        assert_eq!(phases.len(), 2);
        assert_eq!(phases[0].get("cycles_per_sec").unwrap().as_f64(), Some(200.0));
    }

    #[test]
    fn zero_wall_time_does_not_divide_by_zero() {
        let r = BenchRecord { label: "x".into(), wall_s: 0.0, sim_cycles: 10 };
        assert_eq!(r.cycles_per_sec(), 0.0);
    }
}
