//! Bounded time series sampled every N cycles.

use glocks_sim_base::snap::{SnapError, SnapReader, SnapWriter};

/// Maximum points kept before the series decimates itself.
pub const SERIES_CAP: usize = 2048;

/// A gauge sampled every `period` cycles. When the buffer would exceed
/// [`SERIES_CAP`] points, every other point is dropped and the effective
/// period doubles — a long run keeps a constant-size, evenly-spaced
/// profile, and the decimation is a pure function of the sample sequence
/// so identical runs produce identical series.
#[derive(Clone, Debug, PartialEq)]
pub struct TimeSeries {
    /// Cycles between consecutive kept points (grows by decimation).
    period: u64,
    points: Vec<f64>,
    /// Samples pushed since the last kept point (for post-decimation
    /// thinning: only every `stride`-th pushed sample is kept).
    stride: u64,
    pending: u64,
}

impl TimeSeries {
    pub fn new(period: u64) -> Self {
        assert!(period >= 1, "sample period must be at least one cycle");
        TimeSeries { period, points: Vec::new(), stride: 1, pending: 0 }
    }

    /// The cycle distance between consecutive stored points.
    pub fn period(&self) -> u64 {
        self.period
    }

    pub fn points(&self) -> &[f64] {
        &self.points
    }

    pub fn len(&self) -> usize {
        self.points.len()
    }

    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    pub fn save_state(&self, w: &mut SnapWriter) {
        w.u64(self.period);
        w.u64(self.stride);
        w.u64(self.pending);
        w.seq(&self.points, |w, &p| w.f64(p));
    }

    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.period = r.u64()?;
        self.stride = r.u64()?;
        self.pending = r.u64()?;
        self.points = r.seq(|r| r.f64())?;
        Ok(())
    }

    /// Append one sample (call at the registry's base sampling cadence).
    pub fn push(&mut self, v: f64) {
        self.pending += 1;
        if self.pending < self.stride {
            return;
        }
        self.pending = 0;
        self.points.push(v);
        if self.points.len() > SERIES_CAP {
            // Keep even indices: points stay evenly spaced at 2x period.
            let mut i = 0;
            self.points.retain(|_| {
                let keep = i % 2 == 0;
                i += 1;
                keep
            });
            self.period *= 2;
            self.stride *= 2;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stores_samples_at_base_period() {
        let mut s = TimeSeries::new(100);
        for v in 0..5 {
            s.push(v as f64);
        }
        assert_eq!(s.period(), 100);
        assert_eq!(s.points(), &[0.0, 1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn decimates_beyond_cap_and_doubles_period() {
        let mut s = TimeSeries::new(10);
        let n = SERIES_CAP * 4 + 7;
        for v in 0..n {
            s.push(v as f64);
        }
        assert!(s.len() <= SERIES_CAP + 1, "bounded: {}", s.len());
        // 2049 pushes trigger the first decimation (period 20), 2048 more
        // the second (40), 4096 more the third (80).
        assert_eq!(s.period(), 80);
        // Points remain evenly spaced samples of the original sequence.
        let pts = s.points();
        assert_eq!(pts[0], 0.0);
        assert_eq!(pts[1] - pts[0], 8.0);
        assert_eq!(pts[2] - pts[1], 8.0);
    }

    #[test]
    fn decimation_is_deterministic() {
        let run = || {
            let mut s = TimeSeries::new(1);
            for v in 0..(SERIES_CAP * 3) {
                s.push((v % 17) as f64);
            }
            s
        };
        assert_eq!(run(), run());
    }
}
