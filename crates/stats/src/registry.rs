//! The thread-local statistics registry.
//!
//! Mirrors the design of `glocks_sim_base::trace`: the simulation is
//! single-threaded, so the registry lives in a thread local and parallel
//! sweeps (one config per thread) share nothing. Components register their
//! stats by hierarchical dotted name at construction time and get back a
//! typed id:
//!
//! ```
//! use glocks_stats as stats;
//!
//! stats::enable(stats::StatsConfig::default());
//! let misses = stats::counter("mem.l1.t0.miss");
//! let handoff = stats::hist("lock.0.handoff_cycles");
//! stats::add(misses, 3);
//! stats::hist_record(handoff, 4);
//! let dump = stats::snapshot();
//! assert_eq!(dump.counters["mem.l1.t0.miss"], 3);
//! stats::disable();
//! ```
//!
//! **Zero-cost-when-off guarantee:** registration while the registry is
//! disabled returns a `NONE` id, and every recording call on a `NONE` id
//! is a single integer compare — no thread-local access, no allocation,
//! no formatting. Components built before `enable()` therefore cost
//! nothing, and a stats-off simulation runs at pre-stats speed.

use crate::dump::{HistDump, SeriesDump, StatsDump, SCHEMA_VERSION};
use crate::hist::Log2Histogram;
use crate::series::TimeSeries;
use glocks_sim_base::snap::{SnapError, SnapReader, SnapWriter};
use std::cell::RefCell;
use std::collections::BTreeMap;

const NONE: u32 = u32::MAX;

/// Handle to a registered counter (`NONE` when stats are off).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CounterId(u32);

/// Handle to a registered histogram.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistId(u32);

/// Handle to a registered time series.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SeriesId(u32);

impl CounterId {
    pub const NONE: CounterId = CounterId(NONE);
}
impl HistId {
    pub const NONE: HistId = HistId(NONE);
}
impl SeriesId {
    pub const NONE: SeriesId = SeriesId(NONE);
}

/// Registry configuration, set at [`enable`] time.
#[derive(Clone, Copy, Debug)]
pub struct StatsConfig {
    /// Cycles between time-series samples ([`should_sample`] cadence).
    pub sample_period: u64,
}

impl Default for StatsConfig {
    fn default() -> Self {
        StatsConfig { sample_period: 1024 }
    }
}

#[derive(Clone, Copy)]
enum Slot {
    Counter(u32),
    Hist(u32),
    Series(u32),
}

#[derive(Default)]
struct Registry {
    enabled: bool,
    period: u64,
    by_name: BTreeMap<String, Slot>,
    counters: Vec<(String, u64)>,
    hists: Vec<(String, Log2Histogram)>,
    series: Vec<(String, TimeSeries)>,
    instances: BTreeMap<String, u32>,
    meta: BTreeMap<String, String>,
}

thread_local! {
    static REG: RefCell<Registry> = RefCell::new(Registry::default());
}

/// Start a collection session, clearing any previous state.
pub fn enable(cfg: StatsConfig) {
    assert!(cfg.sample_period >= 1);
    REG.with(|r| {
        let mut r = r.borrow_mut();
        *r = Registry { enabled: true, period: cfg.sample_period, ..Registry::default() };
    });
}

/// Stop collecting and discard all registered stats.
pub fn disable() {
    REG.with(|r| *r.borrow_mut() = Registry::default());
}

/// Is a collection session active?
#[inline]
pub fn is_enabled() -> bool {
    REG.with(|r| r.borrow().enabled)
}

/// Should time-series gauges sample at this cycle? One thread-local read;
/// false whenever stats are off.
#[inline]
pub fn should_sample(now: u64) -> bool {
    REG.with(|r| {
        let r = r.borrow();
        r.enabled && now.is_multiple_of(r.period)
    })
}

/// The next cycle ≥ `now` at which [`should_sample`] will return true, or
/// `None` when stats are off (no component ever samples then). The
/// idle-skip scheduler uses this as a horizon cap so that every sampling
/// cycle is executed densely and series gauges land on exactly the cycles
/// a dense run would record.
pub fn next_sample_cycle(now: u64) -> Option<u64> {
    REG.with(|r| {
        let r = r.borrow();
        if !r.enabled {
            return None;
        }
        Some(now.next_multiple_of(r.period))
    })
}

/// Next per-run instance number for a component kind (used to derive
/// stable hierarchical names when a component does not know its own
/// index, e.g. `glock.{k}`). Deterministic given construction order.
pub fn next_instance(kind: &str) -> u32 {
    REG.with(|r| {
        let mut r = r.borrow_mut();
        let n = r.instances.entry(kind.to_string()).or_insert(0);
        let v = *n;
        *n += 1;
        v
    })
}

/// Attach a `key = value` annotation to the next [`snapshot`].
pub fn set_meta(key: &str, value: &str) {
    REG.with(|r| {
        let mut r = r.borrow_mut();
        if r.enabled {
            r.meta.insert(key.to_string(), value.to_string());
        }
    });
}

/// Register (or look up) a counter. Returns [`CounterId::NONE`] when
/// stats are off.
pub fn counter(name: &str) -> CounterId {
    REG.with(|r| {
        let mut r = r.borrow_mut();
        if !r.enabled {
            return CounterId::NONE;
        }
        if let Some(slot) = r.by_name.get(name) {
            match slot {
                Slot::Counter(i) => return CounterId(*i),
                _ => panic!("stat {name:?} already registered with a different type"),
            }
        }
        let i = r.counters.len() as u32;
        r.counters.push((name.to_string(), 0));
        r.by_name.insert(name.to_string(), Slot::Counter(i));
        CounterId(i)
    })
}

/// Register (or look up) a histogram.
pub fn hist(name: &str) -> HistId {
    REG.with(|r| {
        let mut r = r.borrow_mut();
        if !r.enabled {
            return HistId::NONE;
        }
        if let Some(slot) = r.by_name.get(name) {
            match slot {
                Slot::Hist(i) => return HistId(*i),
                _ => panic!("stat {name:?} already registered with a different type"),
            }
        }
        let i = r.hists.len() as u32;
        r.hists.push((name.to_string(), Log2Histogram::new()));
        r.by_name.insert(name.to_string(), Slot::Hist(i));
        HistId(i)
    })
}

/// Register (or look up) a time series at the session's sample period.
pub fn series(name: &str) -> SeriesId {
    REG.with(|r| {
        let mut r = r.borrow_mut();
        if !r.enabled {
            return SeriesId::NONE;
        }
        if let Some(slot) = r.by_name.get(name) {
            match slot {
                Slot::Series(i) => return SeriesId(*i),
                _ => panic!("stat {name:?} already registered with a different type"),
            }
        }
        let i = r.series.len() as u32;
        let period = r.period;
        r.series.push((name.to_string(), TimeSeries::new(period)));
        r.by_name.insert(name.to_string(), Slot::Series(i));
        SeriesId(i)
    })
}

/// Add to a counter. A no-op (one integer compare) on a `NONE` id.
#[inline]
pub fn add(id: CounterId, n: u64) {
    if id.0 == NONE {
        return;
    }
    REG.with(|r| {
        let mut r = r.borrow_mut();
        if r.enabled {
            r.counters[id.0 as usize].1 += n;
        }
    });
}

/// Set a counter to an absolute value (end-of-run publication of totals
/// a component already tracks internally).
#[inline]
pub fn set(id: CounterId, v: u64) {
    if id.0 == NONE {
        return;
    }
    REG.with(|r| {
        let mut r = r.borrow_mut();
        if r.enabled {
            r.counters[id.0 as usize].1 = v;
        }
    });
}

/// Record a sample into a histogram. A no-op on a `NONE` id.
#[inline]
pub fn hist_record(id: HistId, v: u64) {
    if id.0 == NONE {
        return;
    }
    REG.with(|r| {
        let mut r = r.borrow_mut();
        if r.enabled {
            r.hists[id.0 as usize].1.record(v);
        }
    });
}

/// Append a point to a time series (call when [`should_sample`] is true).
#[inline]
pub fn push(id: SeriesId, v: f64) {
    if id.0 == NONE {
        return;
    }
    REG.with(|r| {
        let mut r = r.borrow_mut();
        if r.enabled {
            r.series[id.0 as usize].1.push(v);
        }
    });
}

/// Checkpoint the registry's full dynamic state (values, registration
/// order, instance counters, metadata). Together with
/// [`restore_registry`] this makes a resumed run's [`snapshot`] dump
/// byte-identical to an uninterrupted one.
pub fn save_registry(w: &mut SnapWriter) {
    REG.with(|reg| {
        let reg = reg.borrow();
        w.mark("stats-registry");
        w.bool(reg.enabled);
        w.u64(reg.period);
        w.seq(&reg.counters.iter().collect::<Vec<_>>(), |w, (n, v)| {
            w.str(n);
            w.u64(*v);
        });
        w.seq(&reg.hists.iter().collect::<Vec<_>>(), |w, (n, h)| {
            w.str(n);
            h.save_state(w);
        });
        w.seq(&reg.series.iter().collect::<Vec<_>>(), |w, (n, s)| {
            w.str(n);
            s.save_state(w);
        });
        w.usize(reg.instances.len());
        for (k, v) in reg.instances.iter() {
            w.str(k);
            w.u32(*v);
        }
        w.usize(reg.meta.len());
        for (k, v) in reg.meta.iter() {
            w.str(k);
            w.str(v);
        }
    });
}

/// Restore a registry checkpoint written by [`save_registry`].
///
/// Call **after** the machine has been reconstructed: reconstruction
/// re-registers every stat in the same deterministic order, so the ids
/// components hold match the saved vector indices. Registered names must
/// match the snapshot exactly (same set, same order) — a mismatch means
/// the snapshot belongs to a different configuration and is rejected.
pub fn restore_registry(r: &mut SnapReader<'_>) -> Result<(), SnapError> {
    r.expect("stats-registry")?;
    let enabled = r.bool()?;
    let period = r.u64()?;
    let counters: Vec<(String, u64)> = r.seq(|r| Ok((r.str()?, r.u64()?)))?;
    let hists: Vec<(String, Log2Histogram)> = r.seq(|r| {
        let n = r.str()?;
        let mut h = Log2Histogram::new();
        h.load_state(r)?;
        Ok((n, h))
    })?;
    let series: Vec<(String, TimeSeries)> = r.seq(|r| {
        let n = r.str()?;
        let mut s = TimeSeries::new(1);
        s.load_state(r)?;
        Ok((n, s))
    })?;
    let n_inst = r.usize()?;
    let mut instances = BTreeMap::new();
    for _ in 0..n_inst {
        let k = r.str()?;
        let v = r.u32()?;
        instances.insert(k, v);
    }
    let n_meta = r.usize()?;
    let mut meta = BTreeMap::new();
    for _ in 0..n_meta {
        let k = r.str()?;
        let v = r.str()?;
        meta.insert(k, v);
    }
    REG.with(|reg| {
        let mut reg = reg.borrow_mut();
        if reg.enabled != enabled {
            return Err(SnapError::Corrupt { what: "stats enabled flag mismatch" });
        }
        if !enabled {
            // Stats were off when the checkpoint was taken; there is
            // nothing to restore and the fresh registry is already empty.
            return Ok(());
        }
        let same_names = |have: &[(String, Log2Histogram)], want: &[(String, Log2Histogram)]| {
            have.len() == want.len()
                && have.iter().zip(want).all(|((a, _), (b, _))| a == b)
        };
        if reg.counters.len() != counters.len()
            || reg
                .counters
                .iter()
                .zip(&counters)
                .any(|((a, _), (b, _))| a != b)
            || !same_names(&reg.hists, &hists)
            || reg.series.len() != series.len()
            || reg.series.iter().zip(&series).any(|((a, _), (b, _))| a != b)
        {
            return Err(SnapError::Corrupt { what: "stats registration order mismatch" });
        }
        reg.period = period;
        reg.counters = counters;
        reg.hists = hists;
        reg.series = series;
        reg.instances = instances;
        reg.meta = meta;
        Ok(())
    })
}

/// Freeze the registry into a serializable, deterministically-ordered
/// dump. The registry keeps collecting afterwards; [`disable`] ends the
/// session.
pub fn snapshot() -> StatsDump {
    REG.with(|r| {
        let r = r.borrow();
        StatsDump {
            schema_version: SCHEMA_VERSION,
            meta: r.meta.clone(),
            counters: r.counters.iter().cloned().collect(),
            hists: r
                .hists
                .iter()
                .map(|(n, h)| (n.clone(), HistDump::from_hist(h)))
                .collect(),
            series: r
                .series
                .iter()
                .map(|(n, s)| (n.clone(), SeriesDump::from_series(s)))
                .collect(),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registration_returns_none_and_records_nothing() {
        disable();
        let c = counter("x.count");
        let h = hist("x.hist");
        let s = series("x.series");
        assert_eq!(c, CounterId::NONE);
        assert_eq!(h, HistId::NONE);
        assert_eq!(s, SeriesId::NONE);
        add(c, 5);
        hist_record(h, 5);
        push(s, 5.0);
        assert!(!is_enabled());
        assert!(!should_sample(0));
        let d = snapshot();
        assert!(d.counters.is_empty() && d.hists.is_empty() && d.series.is_empty());
    }

    #[test]
    fn enabled_session_collects_and_disable_clears() {
        enable(StatsConfig { sample_period: 10 });
        set_meta("bench", "SCTR");
        let c = counter("a.count");
        add(c, 2);
        add(c, 3);
        let c2 = counter("a.count");
        assert_eq!(c, c2, "registration is idempotent by name");
        add(c2, 1);
        let h = hist("a.lat");
        hist_record(h, 7);
        let s = series("a.q");
        assert!(should_sample(0));
        assert!(!should_sample(5));
        assert!(should_sample(20));
        push(s, 1.5);
        let d = snapshot();
        assert_eq!(d.counters["a.count"], 6);
        assert_eq!(d.hists["a.lat"].count, 1);
        assert_eq!(d.series["a.q"].points, vec![1.5]);
        assert_eq!(d.meta["bench"], "SCTR");
        disable();
        assert!(snapshot().counters.is_empty());
    }

    #[test]
    fn instances_count_per_kind() {
        enable(StatsConfig::default());
        assert_eq!(next_instance("glock"), 0);
        assert_eq!(next_instance("glock"), 1);
        assert_eq!(next_instance("noc"), 0);
        disable();
    }

    #[test]
    fn set_overwrites() {
        enable(StatsConfig::default());
        let c = counter("b.total");
        add(c, 9);
        set(c, 4);
        assert_eq!(snapshot().counters["b.total"], 4);
        disable();
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn type_confusion_is_rejected() {
        enable(StatsConfig::default());
        let _ = counter("t.x");
        let _ = hist("t.x");
    }
}
