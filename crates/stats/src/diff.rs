//! Run-to-run regression diffing of stats dumps.
//!
//! `diff(old, new, opts)` compares two [`StatsDump`]s and classifies every
//! stat: unchanged, drifted within tolerance, out of tolerance, added, or
//! removed. The report's `failed` flag drives the `glocks-stats diff`
//! binary's exit code and therefore the CI regression gate: any watched
//! counter moving more than `tolerance` (relative) fails the build.
//!
//! Histograms are compared on their summary moments (count, sum, max and
//! p99) rather than bucket-by-bucket — a one-sample shift across a
//! power-of-two edge is not a regression, a fatter tail is. Time series
//! are compared on their point count and mean, which catches sampling
//! regressions without demanding bitwise equality of a 2048-point gauge.

use crate::dump::StatsDump;
use std::collections::BTreeSet;

/// Diff configuration.
#[derive(Clone, Debug)]
pub struct DiffOptions {
    /// Maximum tolerated relative drift, e.g. `0.01` for ±1%. Absolute
    /// differences on values ≤ `abs_floor` are ignored (a counter moving
    /// 2 → 3 is a 50% relative change but rarely meaningful).
    pub tolerance: f64,
    /// Values whose old and new magnitude both fall at or below this floor
    /// are exempt from the relative check.
    pub abs_floor: f64,
    /// Only stats whose name starts with one of these prefixes can fail
    /// the diff (all stats are still reported). Empty = watch everything.
    pub watch: Vec<String>,
    /// Treat added/removed stats as failures (schema drift).
    pub fail_on_shape_change: bool,
}

impl Default for DiffOptions {
    fn default() -> Self {
        DiffOptions {
            tolerance: 0.01,
            abs_floor: 4.0,
            watch: Vec::new(),
            fail_on_shape_change: true,
        }
    }
}

/// What happened to one stat.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DiffKind {
    Unchanged,
    WithinTolerance,
    OutOfTolerance,
    Added,
    Removed,
}

/// One line of the diff report.
#[derive(Clone, Debug, PartialEq)]
pub struct DiffLine {
    pub name: String,
    pub kind: DiffKind,
    pub old: f64,
    pub new: f64,
    /// Relative drift `|new - old| / max(|old|, 1)`.
    pub rel: f64,
    /// Whether this line counted toward failure (watched + out of
    /// tolerance, or a shape change with `fail_on_shape_change`).
    pub failing: bool,
}

/// Full diff result.
#[derive(Clone, Debug, Default)]
pub struct DiffReport {
    pub lines: Vec<DiffLine>,
    pub failed: bool,
    /// Human-readable reason when the dumps could not be compared at all
    /// (schema version mismatch).
    pub incomparable: Option<String>,
}

impl DiffReport {
    /// Lines that changed at all (for compact rendering).
    pub fn changed(&self) -> impl Iterator<Item = &DiffLine> {
        self.lines.iter().filter(|l| l.kind != DiffKind::Unchanged)
    }

    pub fn failing_lines(&self) -> impl Iterator<Item = &DiffLine> {
        self.lines.iter().filter(|l| l.failing)
    }
}

fn watched(name: &str, opts: &DiffOptions) -> bool {
    opts.watch.is_empty() || opts.watch.iter().any(|p| name.starts_with(p.as_str()))
}

fn classify(name: &str, old: f64, new: f64, opts: &DiffOptions) -> DiffLine {
    let rel = (new - old).abs() / old.abs().max(1.0);
    let kind = if old == new {
        DiffKind::Unchanged
    } else if rel <= opts.tolerance || (old.abs() <= opts.abs_floor && new.abs() <= opts.abs_floor)
    {
        DiffKind::WithinTolerance
    } else {
        DiffKind::OutOfTolerance
    };
    DiffLine {
        name: name.to_string(),
        kind,
        old,
        new,
        rel,
        failing: kind == DiffKind::OutOfTolerance && watched(name, opts),
    }
}

fn shape_line(name: &str, old: Option<f64>, new: Option<f64>, opts: &DiffOptions) -> DiffLine {
    let kind = if old.is_none() { DiffKind::Added } else { DiffKind::Removed };
    DiffLine {
        name: name.to_string(),
        kind,
        old: old.unwrap_or(0.0),
        new: new.unwrap_or(0.0),
        rel: f64::INFINITY,
        failing: opts.fail_on_shape_change && watched(name, opts),
    }
}

/// Compare two dumps. See the module docs for the comparison semantics.
pub fn diff(old: &StatsDump, new: &StatsDump, opts: &DiffOptions) -> DiffReport {
    if old.schema_version != new.schema_version {
        return DiffReport {
            lines: Vec::new(),
            failed: true,
            incomparable: Some(format!(
                "schema version mismatch: old v{} vs new v{}",
                old.schema_version, new.schema_version
            )),
        };
    }

    // Flatten both dumps into comparable scalar metrics.
    let flatten = |d: &StatsDump| -> Vec<(String, f64)> {
        let mut out: Vec<(String, f64)> = Vec::new();
        for (k, v) in &d.counters {
            out.push((k.clone(), *v as f64));
        }
        for (k, h) in &d.hists {
            out.push((format!("{k}.count"), h.count as f64));
            out.push((format!("{k}.sum"), h.sum as f64));
            out.push((format!("{k}.max"), h.max as f64));
            out.push((format!("{k}.p99"), h.percentile(0.99) as f64));
        }
        for (k, s) in &d.series {
            out.push((format!("{k}.n"), s.points.len() as f64));
            let mean = if s.points.is_empty() {
                0.0
            } else {
                s.points.iter().sum::<f64>() / s.points.len() as f64
            };
            out.push((format!("{k}.mean"), mean));
        }
        out
    };

    let old_flat: std::collections::BTreeMap<String, f64> = flatten(old).into_iter().collect();
    let new_flat: std::collections::BTreeMap<String, f64> = flatten(new).into_iter().collect();

    let names: BTreeSet<&String> = old_flat.keys().chain(new_flat.keys()).collect();
    let mut lines = Vec::with_capacity(names.len());
    for name in names {
        match (old_flat.get(name), new_flat.get(name)) {
            (Some(&o), Some(&n)) => lines.push(classify(name, o, n, opts)),
            (o, n) => lines.push(shape_line(name, o.copied(), n.copied(), opts)),
        }
    }
    let failed = lines.iter().any(|l| l.failing);
    DiffReport { lines, failed, incomparable: None }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dump::HistDump;

    fn dump_with(counters: &[(&str, u64)]) -> StatsDump {
        let mut d = StatsDump { schema_version: crate::dump::SCHEMA_VERSION, ..Default::default() };
        for (k, v) in counters {
            d.counters.insert((*k).to_string(), *v);
        }
        d
    }

    #[test]
    fn identical_dumps_pass() {
        let d = dump_with(&[("glock.0.grants", 1000), ("sim.cycles", 50_000)]);
        let r = diff(&d, &d, &DiffOptions::default());
        assert!(!r.failed);
        assert!(r.lines.iter().all(|l| l.kind == DiffKind::Unchanged));
    }

    #[test]
    fn small_drift_passes_large_drift_fails() {
        let old = dump_with(&[("sim.cycles", 100_000)]);
        let within = dump_with(&[("sim.cycles", 100_500)]);
        let beyond = dump_with(&[("sim.cycles", 150_000)]);
        let opts = DiffOptions::default();
        assert!(!diff(&old, &within, &opts).failed, "0.5% < 1% tolerance");
        let r = diff(&old, &beyond, &opts);
        assert!(r.failed, "50% > 1% tolerance");
        let line = r.failing_lines().next().unwrap();
        assert_eq!(line.name, "sim.cycles");
        assert_eq!(line.kind, DiffKind::OutOfTolerance);
    }

    #[test]
    fn tiny_absolute_changes_are_exempt() {
        let old = dump_with(&[("trace.dropped", 2)]);
        let new = dump_with(&[("trace.dropped", 3)]);
        let r = diff(&old, &new, &DiffOptions::default());
        assert!(!r.failed, "2 -> 3 is huge relatively but below abs_floor");
        assert_eq!(r.changed().count(), 1);
    }

    #[test]
    fn watch_prefixes_scope_failures() {
        let old = dump_with(&[("glock.0.grants", 1000), ("noc.flits", 9000)]);
        let new = dump_with(&[("glock.0.grants", 1000), ("noc.flits", 5000)]);
        let scoped = DiffOptions { watch: vec!["glock.".into()], ..Default::default() };
        let r = diff(&old, &new, &scoped);
        assert!(!r.failed, "noc drift is reported but unwatched");
        assert_eq!(r.changed().count(), 1);
        let all = DiffOptions::default();
        assert!(diff(&old, &new, &all).failed);
    }

    #[test]
    fn shape_changes_fail_unless_waived() {
        let old = dump_with(&[("a.x", 10)]);
        let new = dump_with(&[("a.x", 10), ("a.y", 7)]);
        let strict = DiffOptions::default();
        let r = diff(&old, &new, &strict);
        assert!(r.failed);
        assert_eq!(r.failing_lines().next().unwrap().kind, DiffKind::Added);
        let lax = DiffOptions { fail_on_shape_change: false, ..Default::default() };
        assert!(!diff(&old, &new, &lax).failed);
    }

    #[test]
    fn hist_tail_drift_is_caught() {
        let mut h_old = crate::hist::Log2Histogram::new();
        h_old.record_n(3, 100);
        let mut h_new = crate::hist::Log2Histogram::new();
        h_new.record_n(3, 90);
        h_new.record_n(500, 10); // fat tail appears
        let mut old = dump_with(&[]);
        old.hists.insert("lock.0.handoff_cycles".into(), HistDump::from_hist(&h_old));
        let mut new = dump_with(&[]);
        new.hists.insert("lock.0.handoff_cycles".into(), HistDump::from_hist(&h_new));
        let r = diff(&old, &new, &DiffOptions::default());
        assert!(r.failed);
        assert!(r
            .failing_lines()
            .any(|l| l.name == "lock.0.handoff_cycles.p99" || l.name == "lock.0.handoff_cycles.max"));
    }

    #[test]
    fn schema_mismatch_is_incomparable() {
        let old = dump_with(&[("a", 1)]);
        let mut new = dump_with(&[("a", 1)]);
        new.schema_version = 999;
        let r = diff(&old, &new, &DiffOptions::default());
        assert!(r.failed);
        assert!(r.incomparable.unwrap().contains("schema version mismatch"));
    }
}
