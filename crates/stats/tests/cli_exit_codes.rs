//! The `glocks-stats` exit-code contract CI scripts rely on:
//! 0 clean, 1 drift, 2 usage, 3 missing/unreadable dump, 4 bad schema.

use std::process::Command;

fn run(args: &[&str]) -> i32 {
    Command::new(env!("CARGO_BIN_EXE_glocks-stats"))
        .args(args)
        .output()
        .expect("spawn glocks-stats")
        .status
        .code()
        .expect("exit code")
}

fn run_stdout(args: &[&str]) -> (i32, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_glocks-stats"))
        .args(args)
        .output()
        .expect("spawn glocks-stats");
    (out.status.code().expect("exit code"), String::from_utf8_lossy(&out.stdout).into_owned())
}

fn write_dump(dir: &std::path::Path, name: &str, body: &str) -> String {
    let path = dir.join(name);
    std::fs::write(&path, body).unwrap();
    path.to_str().unwrap().to_string()
}

#[test]
fn exit_codes_distinguish_failure_classes() {
    let dir = std::env::temp_dir().join(format!("glocks_stats_cli_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    let ok = write_dump(
        &dir,
        "ok.json",
        r#"{"schema_version":1,"meta":{},"counters":{"sim.cycles":100},"hists":{},"series":{}}"#,
    );
    let drifted = write_dump(
        &dir,
        "drift.json",
        r#"{"schema_version":1,"meta":{},"counters":{"sim.cycles":900},"hists":{},"series":{}}"#,
    );
    let future = write_dump(
        &dir,
        "future.json",
        r#"{"schema_version":999,"meta":{},"counters":{},"hists":{},"series":{}}"#,
    );
    let garbage = write_dump(&dir, "garbage.json", "not json at all");
    let missing = dir.join("does_not_exist.json");
    let missing = missing.to_str().unwrap();

    // 0: clean show / identical diff.
    assert_eq!(run(&["show", &ok]), 0);
    assert_eq!(run(&["diff", &ok, &ok]), 0);
    // 1: out-of-tolerance drift.
    assert_eq!(run(&["diff", &ok, &drifted]), 1);
    // 2: usage errors.
    assert_eq!(run(&[]), 2);
    assert_eq!(run(&["diff", &ok]), 2);
    assert_eq!(run(&["diff", &ok, &ok, "--no-such-flag"]), 2);
    // 3: dump missing or unreadable.
    assert_eq!(run(&["show", missing]), 3);
    assert_eq!(run(&["csv", missing]), 3);
    assert_eq!(run(&["diff", &ok, missing]), 3);
    // 4: malformed dump or unsupported schema version.
    assert_eq!(run(&["show", &garbage]), 4);
    assert_eq!(run(&["show", &future]), 4);
    assert_eq!(run(&["diff", &future, &ok]), 4);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn quantiles_subcommand_reports_interpolated_tails() {
    let dir = std::env::temp_dir().join(format!("glocks_stats_q_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    // 4 samples all inside the [8,16) bucket: the interpolated p50 is 12,
    // not the bucket edge (see Log2Histogram::quantile unit tests).
    let dump = write_dump(
        &dir,
        "svc.json",
        r#"{"schema_version":1,"meta":{},"counters":{},"hists":{"service.total_latency_cycles":{"count":4,"sum":45,"min":8,"max":15,"buckets":[[4,4]]}},"series":{}}"#,
    );

    let (code, out) = run_stdout(&["quantiles", &dump]);
    assert_eq!(code, 0);
    assert!(out.contains("service.total_latency_cycles"), "{out}");

    let (code, out) = run_stdout(&["quantiles", &dump, "service.total_latency_cycles"]);
    assert_eq!(code, 0);
    let row = out.lines().nth(1).expect("header + one row");
    let cols: Vec<&str> = row.split_whitespace().collect();
    // histogram, count, mean, p50, p90, p99, p999
    assert_eq!(cols[1], "4");
    assert_eq!(cols[3], "12", "within-bucket interpolated p50: {out}");
    assert_eq!(cols[6], "15", "p999 clamps to the observed max: {out}");

    // Wrong histogram name is a usage error, missing file stays exit 3.
    assert_eq!(run(&["quantiles", &dump, "no.such.hist"]), 2);
    let missing = dir.join("gone.json");
    assert_eq!(run(&["quantiles", missing.to_str().unwrap()]), 3);

    let _ = std::fs::remove_dir_all(&dir);
}
