//! The `glocks-stats` exit-code contract CI scripts rely on:
//! 0 clean, 1 drift, 2 usage, 3 missing/unreadable dump, 4 bad schema.

use std::process::Command;

fn run(args: &[&str]) -> i32 {
    Command::new(env!("CARGO_BIN_EXE_glocks-stats"))
        .args(args)
        .output()
        .expect("spawn glocks-stats")
        .status
        .code()
        .expect("exit code")
}

fn write_dump(dir: &std::path::Path, name: &str, body: &str) -> String {
    let path = dir.join(name);
    std::fs::write(&path, body).unwrap();
    path.to_str().unwrap().to_string()
}

#[test]
fn exit_codes_distinguish_failure_classes() {
    let dir = std::env::temp_dir().join(format!("glocks_stats_cli_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    let ok = write_dump(
        &dir,
        "ok.json",
        r#"{"schema_version":1,"meta":{},"counters":{"sim.cycles":100},"hists":{},"series":{}}"#,
    );
    let drifted = write_dump(
        &dir,
        "drift.json",
        r#"{"schema_version":1,"meta":{},"counters":{"sim.cycles":900},"hists":{},"series":{}}"#,
    );
    let future = write_dump(
        &dir,
        "future.json",
        r#"{"schema_version":999,"meta":{},"counters":{},"hists":{},"series":{}}"#,
    );
    let garbage = write_dump(&dir, "garbage.json", "not json at all");
    let missing = dir.join("does_not_exist.json");
    let missing = missing.to_str().unwrap();

    // 0: clean show / identical diff.
    assert_eq!(run(&["show", &ok]), 0);
    assert_eq!(run(&["diff", &ok, &ok]), 0);
    // 1: out-of-tolerance drift.
    assert_eq!(run(&["diff", &ok, &drifted]), 1);
    // 2: usage errors.
    assert_eq!(run(&[]), 2);
    assert_eq!(run(&["diff", &ok]), 2);
    assert_eq!(run(&["diff", &ok, &ok, "--no-such-flag"]), 2);
    // 3: dump missing or unreadable.
    assert_eq!(run(&["show", missing]), 3);
    assert_eq!(run(&["csv", missing]), 3);
    assert_eq!(run(&["diff", &ok, missing]), 3);
    // 4: malformed dump or unsupported schema version.
    assert_eq!(run(&["show", &garbage]), 4);
    assert_eq!(run(&["show", &future]), 4);
    assert_eq!(run(&["diff", &future, &ok]), 4);

    let _ = std::fs::remove_dir_all(&dir);
}
