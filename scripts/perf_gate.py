#!/usr/bin/env python3
"""Perf regression gate over a harness BENCH_* self-profile.

Reads the BENCH JSON emitted by `glocks-experiments ... --stats-json DIR`
and checks it against a committed baseline (results/perf_baseline.json).
Two independent gates, both of which must pass:

  * ratio gate (machine-independent): the idle-heavy phase must run at
    least `min_idle_over_busy` times faster than the saturated phase from
    the *same* run.  With the event-driven scheduler alive the measured
    ratio is ~36x; with idle-skip broken or disabled both phases tick
    every cycle and the ratio collapses to ~1x.  Comparing two phases of
    one run cancels out runner speed, so this gate cannot be fooled by a
    fast machine.
  * absolute floor: `total_cycles_per_sec` must clear a floor set far
    below any healthy run (guards against pathological slowdowns the
    ratio cannot see, e.g. a regression that slows *every* phase).

With --append, the run's headline numbers are also appended as one JSON
line to a trajectory file (JSONL), which CI uploads as an artifact so the
fleet's perf history accumulates across runs.
"""

import argparse
import json
import sys


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("bench", help="BENCH_*.json self-profile to check")
    ap.add_argument("baseline", help="committed baseline (perf_baseline.json)")
    ap.add_argument("--append", metavar="JSONL", help="trajectory file to append this run to")
    ap.add_argument("--label", default="local", help="label recorded in the trajectory entry")
    args = ap.parse_args()

    with open(args.bench) as f:
        bench = json.load(f)
    with open(args.baseline) as f:
        base = json.load(f)

    phases = {p["label"]: p["cycles_per_sec"] for p in bench["phases"]}
    try:
        idle = phases[base["idle_phase"]]
        busy = phases[base["busy_phase"]]
    except KeyError as missing:
        print(f"perf gate: phase {missing} not in {args.bench}", file=sys.stderr)
        print(f"  phases present: {sorted(phases)}", file=sys.stderr)
        return 1

    ratio = idle / busy if busy > 0 else float("inf")
    total = bench["total_cycles_per_sec"]
    print(f"total            {total:>12.0f} cycles/s (floor {base['min_total_cycles_per_sec']})")
    print(f"idle-heavy phase {idle:>12.0f} cycles/s ({base['idle_phase']})")
    print(f"saturated phase  {busy:>12.0f} cycles/s ({base['busy_phase']})")
    print(f"idle/busy ratio  {ratio:>12.2f} (floor {base['min_idle_over_busy']})")

    ok = True
    if ratio < base["min_idle_over_busy"]:
        print(
            f"FAIL: idle/busy ratio {ratio:.2f} below {base['min_idle_over_busy']} — "
            "idle-skip scheduling has regressed",
            file=sys.stderr,
        )
        ok = False
    if total < base["min_total_cycles_per_sec"]:
        print(
            f"FAIL: total {total:.0f} cycles/s below floor "
            f"{base['min_total_cycles_per_sec']}",
            file=sys.stderr,
        )
        ok = False

    if args.append:
        entry = {
            "label": args.label,
            "total_cycles_per_sec": round(total),
            "idle_cycles_per_sec": round(idle),
            "busy_cycles_per_sec": round(busy),
            "idle_over_busy": round(ratio, 2),
            "total_sim_cycles": bench["total_sim_cycles"],
            "total_wall_s": round(bench["total_wall_s"], 3),
            "gate": "pass" if ok else "fail",
        }
        with open(args.append, "a") as f:
            f.write(json.dumps(entry, sort_keys=True) + "\n")
        print(f"appended trajectory entry to {args.append}")

    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
